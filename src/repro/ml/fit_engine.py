"""Presorted tree-training engine: the fitting hot path.

The seed implementation of :meth:`repro.ml.tree.DecisionTreeBase._grow`
re-sorts every candidate feature column at every node -- an
``O(nodes x F x n log n)`` Python-level loop that dominates the runtime
of every Bagging fit (and therefore every experiment: each LOO fold fits
10 REPTrees).  This module replaces the per-node argsorts with a
*presort-once* scheme:

* each feature column is stably argsorted exactly once at the root;
* node partitions stably split the per-feature sorted index sets by the
  chosen split mask (an ``O(F x n)`` scan), so every node always sees
  its rows in the same order the reference grower would have obtained
  from ``np.argsort(x, kind="stable")`` on its subset.

Two split-search kernels run on top of the presorted orders:

* a small C kernel, compiled on first use with the system C compiler and
  loaded through :mod:`ctypes` (same pattern and graceful fallback as
  :mod:`repro.serve.engine`), which fuses the cumulative class counts,
  candidate enumeration and split scoring into one pass per node;
* a pure-NumPy scan (:func:`_scan_sorted`) -- the always-available
  fallback, and the *shared* implementation behind the reference
  :func:`repro.ml.tree._best_split` oracle, so its floats are identical
  to the reference by construction.

Bit-identity contract
---------------------

Trees grown through this engine are **node-for-node identical** to the
reference grower -- same feature, threshold and class counts at every
node, ties and duplicated feature values included -- so every report
byte and run-manifest ``report_sha256`` is unchanged.  The NumPy path
achieves this by performing the exact same float64 operations on the
exact same values in the same order.  The C kernel cannot call NumPy's
``log`` (libm's ``log`` differs from it in the last ulp), so it scores
candidates on an order-equivalent integer-count statistic
``S = -(sum of k*ln(k) terms)`` built from a NumPy-precomputed
``k -> k*ln(k)`` table, and *selects* rather than scores: whenever the
winning margin is within a guard band (``~1e-6`` nats of gain, orders
of magnitude above both kernels' rounding error) -- or the winner sits
within the band of the ``min_gain`` acceptance threshold -- the node is
declared uncertain and re-searched with the NumPy scan.  Exact ties
(mirrored or duplicated count partitions, the common case on real data)
are recognised structurally and resolved first-wins, exactly like the
reference's ``argmax``/strict-``>`` scan.

Engine selection: ``REPRO_FIT_ENGINE`` (``auto`` | ``c`` | ``numpy`` |
``reference``) or the ``engine`` argument of the tree constructors;
``REPRO_FIT_NO_CKERNEL=1`` disables compilation entirely.
"""

from __future__ import annotations

import atexit
import ctypes
import os
import shutil
import subprocess
import tempfile
import threading
from dataclasses import dataclass
from typing import Callable

import numpy as np

_EPS = 1e-12

#: Guard band (in nats of information gain) around split-selection
#: decisions made by the C kernel.  Both kernels' rounding errors are
#: below ~1e-12 nats, so a margin above the band is decided identically
#: by both; anything inside it falls back to the NumPy reference scan.
UNCERTAIN_GAIN_MARGIN = 1e-6


def _entropy_terms(pos: np.ndarray, neg: np.ndarray) -> np.ndarray:
    """Binary entropy (in nats) of count vectors, elementwise."""
    total = pos + neg
    total = np.maximum(total, _EPS)
    p = pos / total
    q = neg / total
    return -(p * np.log(np.maximum(p, _EPS)) + q * np.log(np.maximum(q, _EPS)))


def _entropy_scalar(pos: float, neg: float) -> float:
    """Binary entropy of one count pair, without throwaway arrays.

    Bit-identical to ``_entropy_terms(np.array([pos]), np.array([neg]))[0]``
    (asserted over a count grid in the tests): scalar ``np.log`` runs the
    same ufunc loop as the 1-element array, and the surrounding float64
    arithmetic is the same IEEE operations in the same order.
    """
    total = pos + neg
    if total < _EPS:
        total = _EPS
    p = pos / total
    q = neg / total
    log_p = np.log(p if p > _EPS else _EPS)
    log_q = np.log(q if q > _EPS else _EPS)
    return float(-(p * log_p + q * log_q))


@dataclass
class _Node:
    """Mutable tree node used while growing/pruning."""

    grow_pos: float
    grow_neg: float
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    prune_pos: float = 0.0
    prune_neg: float = 0.0
    total_pos: float = 0.0
    total_neg: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    @property
    def majority_positive(self) -> bool:
        return self.grow_pos >= self.grow_neg

    def make_leaf(self) -> None:
        self.feature = -1
        self.left = None
        self.right = None


def _scan_sorted(
    xs: np.ndarray,
    ys: np.ndarray,
    total_pos: float,
    min_samples_leaf: int,
    min_gain: float,
    parent_entropy: float,
) -> tuple[float, float] | None:
    """Best (threshold, gain) of one feature already in sorted order.

    This is the reference split scan: :func:`repro.ml.tree._best_split`
    calls it after argsorting each column, and the presorted NumPy
    engine calls it on its maintained orders -- one implementation, so
    the two are bit-identical by construction.  Candidates are midpoints
    between consecutive distinct sorted values; gain is the information
    gain of the induced binary partition.
    """
    n = len(ys)
    if xs[0] == xs[-1]:
        return None
    cum_pos = np.cumsum(ys)
    left_n = np.arange(1, n)
    left_pos = cum_pos[:-1]
    left_neg = left_n - left_pos
    right_n = n - left_n
    right_pos = total_pos - left_pos
    right_neg = right_n - right_pos
    valid = (xs[:-1] < xs[1:]) & (left_n >= min_samples_leaf) & (
        right_n >= min_samples_leaf
    )
    if not valid.any():
        return None
    child_entropy = (
        left_n * _entropy_terms(left_pos, left_neg)
        + right_n * _entropy_terms(right_pos, right_neg)
    ) / n
    gain = parent_entropy - child_entropy
    gain[~valid] = -np.inf
    k = int(np.argmax(gain))
    g = float(gain[k])
    if g <= min_gain:
        return None
    return float((xs[k] + xs[k + 1]) / 2.0), g


# -- compiled split-search kernel ---------------------------------------

_KERNEL_SOURCE = r"""
#include <stdint.h>
#include <math.h>

/* Split search over presorted per-feature index sets.
 *
 * Candidates are scored on S = -(sum of k*ln(k) terms), an affine
 * transform of the reference information gain with positive scale, via
 * the caller-precomputed xlogx table (xlogx[k] = k*ln(k), xlogx[0]=0).
 * Selection mirrors the reference scan: first-wins argmax per feature
 * order, strict > across candidates.  Exact S ties are kept only when
 * the candidate's count partition equals or mirrors the incumbent's
 * (those are exact ties in any IEEE implementation); any other
 * within-band rival makes the node "uncertain" and the caller
 * re-searches it with the NumPy reference scan.
 *
 * Returns 1 = split found, 0 = no admissible split, -1 = uncertain.
 */
int repro_fit_best_split(
    const double *xcols,    /* (n_feat_total, n_total): presorted columns */
    const double *y,        /* (n_total,) 0/1 labels */
    int64_t n_total,
    const int32_t *orders,  /* (n_feat_total, m): node rows, sorted per feature */
    int64_t m,
    const int32_t *feat, int32_t n_feat,
    int64_t min_samples_leaf,
    int64_t total_pos,      /* node positive count (exact) */
    double parent_entropy, double min_gain,
    const double *xlogx,    /* (n_total + 1,) */
    int32_t *out_feature, double *out_threshold)
{
    double s_best = -INFINITY, s_second = -INFINITY;
    double thr_best = 0.0;
    int32_t f_best = -1;
    int64_t L_best = 0, lp_best = 0;
    /* gain <= min_gain  <=>  S <= -m * (parent_entropy - min_gain) */
    const double s_mingain = -((double)m) * (parent_entropy - min_gain);
    const double tol = UNCERTAIN_GAIN_MARGIN * (double)m;

    for (int32_t fi = 0; fi < n_feat; fi++) {
        const int64_t f = (int64_t)feat[fi];
        const int32_t *ord = orders + f * m;
        const double *x = xcols + f * n_total;
        if (x[ord[0]] == x[ord[m - 1]]) continue;  /* constant feature */
        double cum = 0.0;
        for (int64_t i = 0; i + 1 < m; i++) {
            const int32_t r = ord[i];
            cum += y[r];
            const double xi = x[r], xn = x[ord[i + 1]];
            if (!(xi < xn)) continue;
            const int64_t L = i + 1, R = m - L;
            if (L < min_samples_leaf || R < min_samples_leaf) continue;
            const int64_t lp = (int64_t)cum;
            const int64_t ln_ = L - lp;
            const int64_t rp = total_pos - lp;
            const int64_t rn = R - rp;
            const double s = -((xlogx[L] - xlogx[lp] - xlogx[ln_])
                             + (xlogx[R] - xlogx[rp] - xlogx[rn]));
            if (s > s_best) {
                if (s_best > s_second) s_second = s_best;
                s_best = s;
                f_best = (int32_t)f;
                L_best = L;
                lp_best = lp;
                thr_best = (xi + xn) / 2.0;
            } else if (s == s_best && f_best >= 0) {
                const int same = (L == L_best && lp == lp_best);
                const int mirror = (L == m - L_best && lp == total_pos - lp_best);
                if (!same && !mirror) s_second = s;  /* suspicious exact tie */
            } else if (s > s_second) {
                s_second = s;
            }
        }
    }
    if (f_best < 0) return 0;
    if (s_best <= s_mingain)
        return (s_mingain - s_best < tol) ? -1 : 0;
    if (s_best - s_mingain < tol) return -1;
    if (s_best - s_second < tol) return -1;
    *out_feature = f_best;
    *out_threshold = thr_best;
    return 1;
}

/* Stable partition of every feature's sorted index set by the split
 * mask x_split[row] <= threshold -- the presort invariant: each child's
 * per-feature order is exactly the stable argsort of its subset. */
void repro_fit_partition(
    const double *xsplit,   /* (n_total,): column of the split feature */
    double threshold,
    const int32_t *orders,  /* (n_feat_total, m) */
    int64_t m, int32_t n_feat_total,
    int64_t m_left,
    int32_t *left_out,      /* (n_feat_total, m_left) */
    int32_t *right_out)     /* (n_feat_total, m - m_left) */
{
    const int64_t m_right = m - m_left;
    for (int32_t f = 0; f < n_feat_total; f++) {
        const int32_t *ord = orders + (int64_t)f * m;
        int32_t *lo = left_out + (int64_t)f * m_left;
        int32_t *ro = right_out + (int64_t)f * m_right;
        int64_t li = 0, ri = 0;
        for (int64_t i = 0; i < m; i++) {
            const int32_t r = ord[i];
            if (xsplit[r] <= threshold) lo[li++] = r;
            else ro[ri++] = r;
        }
    }
}
""".replace("UNCERTAIN_GAIN_MARGIN", repr(UNCERTAIN_GAIN_MARGIN))

_kernel_lock = threading.Lock()
_kernel: "ctypes.CDLL | None" = None
_kernel_tried = False


def _compile_kernel() -> "ctypes.CDLL | None":
    """Compile and load the C kernel; ``None`` when unavailable."""
    if os.environ.get("REPRO_FIT_NO_CKERNEL"):
        return None
    compiler = os.environ.get("CC") or shutil.which("cc") or shutil.which("gcc")
    if compiler is None:
        return None
    build_dir = tempfile.mkdtemp(prefix="repro-fit-kernel-")
    atexit.register(shutil.rmtree, build_dir, ignore_errors=True)
    src = os.path.join(build_dir, "kernel.c")
    lib_path = os.path.join(build_dir, "kernel.so")
    try:
        with open(src, "w") as handle:
            handle.write(_KERNEL_SOURCE)
        subprocess.run(
            [compiler, "-O2", "-shared", "-fPIC", "-o", lib_path, src],
            check=True,
            capture_output=True,
            timeout=120,
        )
        lib = ctypes.CDLL(lib_path)
        ptr = ctypes.c_void_p
        i64 = ctypes.c_int64
        i32 = ctypes.c_int32
        lib.repro_fit_best_split.argtypes = [
            ptr, ptr, i64, ptr, i64, ptr, i32, i64, i64,
            ctypes.c_double, ctypes.c_double, ptr, ptr, ptr,
        ]
        lib.repro_fit_best_split.restype = ctypes.c_int
        lib.repro_fit_partition.argtypes = [
            ptr, ctypes.c_double, ptr, i64, i32, i64, ptr, ptr,
        ]
        lib.repro_fit_partition.restype = None
        return lib
    except (OSError, subprocess.SubprocessError):
        return None


def _get_kernel() -> "ctypes.CDLL | None":
    """The process-wide compiled kernel (compiled once, lazily)."""
    global _kernel, _kernel_tried
    if _kernel_tried:
        return _kernel
    with _kernel_lock:
        if not _kernel_tried:
            _kernel = _compile_kernel()
            _kernel_tried = True
    return _kernel


def has_ckernel() -> bool:
    """Whether the compiled C split-search kernel is available."""
    return _get_kernel() is not None


def resolve_engine(requested: str | None = None) -> str:
    """Resolve an engine request to ``c``, ``numpy`` or ``reference``.

    ``None`` defers to ``$REPRO_FIT_ENGINE`` (default ``auto``); ``auto``
    prefers the compiled kernel and falls back to the presorted NumPy
    scan.  Requesting ``c`` without a compiler raises.
    """
    name = requested or os.environ.get("REPRO_FIT_ENGINE") or "auto"
    if name not in ("auto", "c", "numpy", "reference"):
        raise ValueError(f"unknown fit engine {name!r}")
    if name == "auto":
        return "c" if has_ckernel() else "numpy"
    if name == "c" and not has_ckernel():
        raise RuntimeError("compiled fit kernel unavailable")
    return name


def active_engine() -> str:
    """Resolved default engine name for observability (never raises)."""
    try:
        return resolve_engine(None)
    except (RuntimeError, ValueError):
        return "numpy"


def _ptr(array: np.ndarray) -> ctypes.c_void_p:
    return ctypes.c_void_p(array.ctypes.data)


def _search_numpy(
    Xcols: np.ndarray,
    y: np.ndarray,
    orders: np.ndarray,
    feats: np.ndarray,
    min_samples_leaf: int,
    min_gain: float,
    parent_entropy: float,
    total_pos: float,
) -> tuple[int, float] | None:
    """Best (feature, threshold) via the presorted NumPy scan.

    All candidate features are scored in one 2-D pass: candidates are
    value boundaries inside the ``min_samples_leaf`` window, gathered
    with ``nonzero`` in row-major = (feature order, sorted position)
    order, so a flat ``argmax`` over their gains reproduces the
    reference selection exactly -- per-feature first maximum, strict
    ``>`` across features.  Per-candidate gains are the same elementwise
    float64 operations on the same values as :func:`_scan_sorted`, hence
    bit-identical; on quantized features (grid coordinates, pin counts)
    the candidate set shrinks by orders of magnitude.
    """
    m = orders.shape[1]
    if m < 2 * min_samples_leaf:
        return None
    IDX = orders[feats]
    XS = Xcols[feats[:, None], IDX]
    varying = XS[:, 0] != XS[:, -1]
    if not varying.all():
        if not varying.any():
            return None
        feats = feats[varying]
        IDX = IDX[varying]
        XS = XS[varying]
    YS = y[IDX]
    cum_pos = np.cumsum(YS, axis=1)
    lo = min_samples_leaf - 1
    hi = m - min_samples_leaf  # last admissible candidate is hi - 1
    rows, cols = np.nonzero(XS[:, lo:hi] < XS[:, lo + 1 : hi + 1])
    if len(rows) == 0:
        return None
    cols += lo
    left_n = cols + 1
    left_pos = cum_pos[rows, cols]
    left_neg = left_n - left_pos
    right_n = m - left_n
    right_pos = total_pos - left_pos
    right_neg = right_n - right_pos
    child_entropy = (
        left_n * _entropy_terms(left_pos, left_neg)
        + right_n * _entropy_terms(right_pos, right_neg)
    ) / m
    gain = parent_entropy - child_entropy
    j = int(np.argmax(gain))
    if float(gain[j]) <= min_gain:
        return None
    r, k = int(rows[j]), int(cols[j])
    return int(feats[r]), float((XS[r, k] + XS[r, k + 1]) / 2.0)


def grow_tree(
    X: np.ndarray,
    y: np.ndarray,
    candidate_features: Callable[[int], np.ndarray],
    max_depth: int | None,
    min_samples_leaf: int,
    min_gain: float,
    depth: int = 0,
    use_c: bool = False,
) -> tuple[_Node, dict[str, int]]:
    """Grow a (sub)tree from presorted feature orders.

    Node processing order, pre-split checks, candidate-feature sampling
    (``candidate_features`` is consulted once per expandable node, in the
    same order as the reference grower -- which keeps RandomTree's RNG
    stream identical) and split selection all mirror
    :meth:`DecisionTreeBase._grow` exactly.  Returns the root node plus
    ``{"nodes", "splits", "fallbacks"}`` counters.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.ascontiguousarray(np.asarray(y, dtype=np.float64))
    n, n_features = X.shape
    Xcols = np.ascontiguousarray(X.T)
    orders = np.empty((n_features, n), dtype=np.int32)
    for f in range(n_features):
        orders[f] = np.argsort(Xcols[f], kind="stable")

    lib = _get_kernel() if use_c else None
    if use_c and lib is None:
        raise RuntimeError("compiled fit kernel unavailable")
    if lib is not None:
        k = np.arange(n + 1, dtype=np.float64)
        xlogx = k * np.log(np.maximum(k, 1.0))
        out_feature = np.zeros(1, dtype=np.int32)
        out_threshold = np.zeros(1, dtype=np.float64)
    flags = np.empty(n, dtype=bool)

    stats = {"nodes": 0, "splits": 0, "fallbacks": 0}
    root_pos = float(y.sum())
    root = _Node(grow_pos=root_pos, grow_neg=float(n - root_pos))
    stack: list[tuple[_Node, np.ndarray, int]] = [(root, orders, depth)]
    while stack:
        node, node_orders, d = stack.pop()
        stats["nodes"] += 1
        m = node_orders.shape[1]
        pos, neg = node.grow_pos, node.grow_neg
        if (
            m < 2 * min_samples_leaf
            or pos == 0
            or neg == 0
            or (max_depth is not None and d >= max_depth)
        ):
            continue
        feats = np.asarray(candidate_features(n_features))
        parent_entropy = _entropy_scalar(pos, neg)
        split: tuple[int, float] | None
        if lib is not None:
            feats32 = np.ascontiguousarray(feats, dtype=np.int32)
            status = lib.repro_fit_best_split(
                _ptr(Xcols), _ptr(y), n,
                _ptr(node_orders), m,
                _ptr(feats32), len(feats32),
                min_samples_leaf, int(pos),
                parent_entropy, min_gain,
                _ptr(xlogx), _ptr(out_feature), _ptr(out_threshold),
            )
            if status < 0:  # uncertain: margin inside the guard band
                stats["fallbacks"] += 1
                split = _search_numpy(
                    Xcols, y, node_orders, feats,
                    min_samples_leaf, min_gain, parent_entropy, pos,
                )
            elif status == 0:
                split = None
            else:
                split = (int(out_feature[0]), float(out_threshold[0]))
        else:
            split = _search_numpy(
                Xcols, y, node_orders, feats,
                min_samples_leaf, min_gain, parent_entropy, pos,
            )
        if split is None:
            continue
        feature, threshold = split
        ord_split = node_orders[feature]
        go_left = Xcols[feature][ord_split] <= threshold
        m_left = int(np.count_nonzero(go_left))
        pos_left = float(y[ord_split[go_left]].sum())
        if lib is not None:
            left_orders = np.empty((n_features, m_left), dtype=np.int32)
            right_orders = np.empty((n_features, m - m_left), dtype=np.int32)
            lib.repro_fit_partition(
                _ptr(Xcols[feature]), threshold,
                _ptr(node_orders), m, n_features, m_left,
                _ptr(left_orders), _ptr(right_orders),
            )
        else:
            # Row-major boolean selection keeps each feature's order
            # stable, and every row keeps exactly m_left entries, so the
            # flat selections reshape back into per-feature orders.
            flags[ord_split] = go_left
            sel = flags[node_orders]
            left_orders = node_orders[sel].reshape(n_features, m_left)
            right_orders = node_orders[~sel].reshape(n_features, m - m_left)
        stats["splits"] += 1
        node.feature = feature
        node.threshold = threshold
        node.left = _Node(grow_pos=pos_left, grow_neg=float(m_left - pos_left))
        node.right = _Node(
            grow_pos=pos - pos_left,
            grow_neg=float((m - m_left) - (pos - pos_left)),
        )
        stack.append((node.left, left_orders, d + 1))
        stack.append((node.right, right_orders, d + 1))
    return root, stats
