"""From-scratch NumPy multi-layer perceptron classifier.

The neural backend of the pluggable-classifier subsystem
(:mod:`repro.ml.backends`): "Attacking Split Manufacturing from a Deep
Learning Perspective" (arXiv:2007.03989) shows a learned neural model
beating the tree-based attack on the same v-pin matching problem, so the
bake-off needs a neural row built from the same primitives as the rest
of the repository -- NumPy only, no framework.

Architecture and training loop:

* configurable fully-connected hidden layers with ReLU activations;
* a 2-unit softmax output trained with cross-entropy loss;
* mini-batch SGD with classical momentum;
* input standardization (mean/std learned on the training matrix);
* early stopping on a seeded validation split, restoring the best
  weights seen.

Determinism contract (the same one the trees obey): given the same
``seed``, ``fit`` visits the same validation split, the same shuffled
mini-batches and the same float64 operations, so the weights -- and
therefore every probability -- are bit-identical across reruns and
across ``--jobs`` settings (training is single-process NumPy; fold
parallelism never splits one ``fit``).

Observability: ``fit`` runs under an ``mlp_fit`` span whose attributes
carry the epoch count and final losses; per-epoch training loss feeds
the ``mlp_train_loss`` histogram and epochs increment the ``mlp_epochs``
counter (see OBSERVABILITY.md).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..obs.metrics import counter, histogram
from ..obs.trace import span

_EPS = 1e-12

#: Histogram buckets for per-epoch cross-entropy losses (nats).
LOSS_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0, 2.0)


def _softmax(z: np.ndarray) -> np.ndarray:
    """Row-wise softmax, stabilized by the row max."""
    shifted = z - z.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def _relu(z: np.ndarray) -> np.ndarray:
    return np.maximum(z, 0.0)


class MLPClassifier:
    """Binary MLP: ReLU hidden layers, softmax head, SGD + momentum.

    ``seed`` may be an ``int`` or a ``numpy.random.Generator`` (the same
    convention as the trees); it drives weight initialization, the
    validation split and the mini-batch shuffles.
    """

    def __init__(
        self,
        hidden_layers: tuple[int, ...] = (32, 16),
        learning_rate: float = 0.05,
        momentum: float = 0.9,
        batch_size: int = 64,
        max_epochs: int = 200,
        patience: int = 10,
        validation_fraction: float = 0.1,
        tol: float = 1e-5,
        l2: float = 0.0,
        seed: int | np.random.Generator = 0,
    ) -> None:
        hidden_layers = tuple(int(h) for h in hidden_layers)
        if not hidden_layers or any(h < 1 for h in hidden_layers):
            raise ValueError("hidden_layers must be a non-empty tuple of >= 1")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be > 0")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if max_epochs < 1:
            raise ValueError("max_epochs must be >= 1")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        if not 0.0 <= validation_fraction < 1.0:
            raise ValueError("validation_fraction must be in [0, 1)")
        if l2 < 0:
            raise ValueError("l2 must be >= 0")
        self.hidden_layers = hidden_layers
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.batch_size = batch_size
        self.max_epochs = max_epochs
        self.patience = patience
        self.validation_fraction = validation_fraction
        self.tol = tol
        self.l2 = l2
        self.seed = seed
        self.weights_: list[np.ndarray] | None = None
        self.biases_: list[np.ndarray] | None = None
        self.loss_curve_: list[float] = []
        self.validation_curve_: list[float] = []
        self.n_epochs_: int = 0
        self.stopped_early_: bool = False
        self.n_features_: int | None = None
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    # -- internals ------------------------------------------------------

    def _standardize(self, X: np.ndarray) -> np.ndarray:
        assert self._mean is not None and self._std is not None
        return (X - self._mean) / self._std

    def _forward(self, Z: np.ndarray) -> list[np.ndarray]:
        """All layer activations for standardized input ``Z``.

        Returns ``[Z, h1, ..., hk, p]`` where ``p`` are the softmax
        probabilities -- everything backprop needs.
        """
        assert self.weights_ is not None and self.biases_ is not None
        activations = [Z]
        for layer, (W, b) in enumerate(zip(self.weights_, self.biases_)):
            pre = activations[-1] @ W + b
            last = layer == len(self.weights_) - 1
            activations.append(_softmax(pre) if last else _relu(pre))
        return activations

    def _loss(self, prob: np.ndarray, y: np.ndarray) -> float:
        """Mean cross-entropy of probabilities against 0/1 labels."""
        picked = prob[np.arange(len(y)), y.astype(np.int64)]
        return float(-np.mean(np.log(np.maximum(picked, _EPS))))

    def _init_parameters(
        self, n_features: int, rng: np.random.Generator
    ) -> None:
        """He-initialized weights, zero biases, for dims f->h1->...->2."""
        dims = (n_features, *self.hidden_layers, 2)
        self.weights_ = [
            rng.normal(size=(fan_in, fan_out)) * np.sqrt(2.0 / fan_in)
            for fan_in, fan_out in zip(dims[:-1], dims[1:])
        ]
        self.biases_ = [np.zeros(fan_out) for fan_out in dims[1:]]

    # -- training -------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if len(X) != len(y):
            raise ValueError("X and y disagree on sample count")
        if len(y) == 0:
            raise ValueError("cannot fit on an empty training set")
        n, n_features = X.shape
        self.n_features_ = int(n_features)
        self._mean = X.mean(axis=0)
        self._std = np.maximum(X.std(axis=0), _EPS)
        Z = self._standardize(X)
        labels = (y > 0.5).astype(np.int64)
        rng = np.random.default_rng(self.seed)
        with span(
            "mlp_fit",
            n_samples=n,
            n_features=int(n_features),
            hidden_layers=list(self.hidden_layers),
        ) as fit_span:
            # Seeded validation split for early stopping; too-small sets
            # train on everything for the full epoch budget.
            n_val = int(round(self.validation_fraction * n))
            order = rng.permutation(n)
            if 1 <= n_val <= n - 1:
                val_rows, train_rows = order[:n_val], order[n_val:]
            else:
                val_rows, train_rows = order[:0], order
            Z_train, y_train = Z[train_rows], labels[train_rows]
            Z_val, y_val = Z[val_rows], labels[val_rows]
            self._init_parameters(n_features, rng)
            assert self.weights_ is not None and self.biases_ is not None
            velocity_w = [np.zeros_like(W) for W in self.weights_]
            velocity_b = [np.zeros_like(b) for b in self.biases_]
            self.loss_curve_ = []
            self.validation_curve_ = []
            self.stopped_early_ = False
            best_val = np.inf
            best_state: tuple[list[np.ndarray], list[np.ndarray]] | None = None
            bad_epochs = 0
            loss_hist = histogram("mlp_train_loss", buckets=LOSS_BUCKETS)
            epoch_counter = counter("mlp_epochs")
            n_train = len(y_train)
            for epoch in range(self.max_epochs):
                shuffle = rng.permutation(n_train)
                total_loss = 0.0
                for start in range(0, n_train, self.batch_size):
                    rows = shuffle[start : start + self.batch_size]
                    total_loss += self._sgd_step(
                        Z_train[rows], y_train[rows], velocity_w, velocity_b
                    ) * len(rows)
                train_loss = total_loss / n_train
                self.loss_curve_.append(train_loss)
                loss_hist.observe(train_loss)
                epoch_counter.inc()
                self.n_epochs_ = epoch + 1
                if len(y_val):
                    val_loss = self._loss(self._forward(Z_val)[-1], y_val)
                    self.validation_curve_.append(val_loss)
                    if val_loss < best_val - self.tol:
                        best_val = val_loss
                        best_state = (
                            [W.copy() for W in self.weights_],
                            [b.copy() for b in self.biases_],
                        )
                        bad_epochs = 0
                    else:
                        bad_epochs += 1
                        if bad_epochs >= self.patience:
                            self.stopped_early_ = True
                            break
            if best_state is not None:
                self.weights_, self.biases_ = best_state
            fit_span.set(
                n_epochs=self.n_epochs_,
                stopped_early=self.stopped_early_,
                train_loss=round(self.loss_curve_[-1], 6),
                val_loss=(
                    round(self.validation_curve_[-1], 6)
                    if self.validation_curve_
                    else None
                ),
            )
        return self

    def _sgd_step(
        self,
        Z: np.ndarray,
        y: np.ndarray,
        velocity_w: list[np.ndarray],
        velocity_b: list[np.ndarray],
    ) -> float:
        """One momentum-SGD update on a mini-batch; returns its loss."""
        assert self.weights_ is not None and self.biases_ is not None
        activations = self._forward(Z)
        prob = activations[-1]
        m = len(y)
        # Softmax + cross-entropy gradient: (p - onehot(y)) / m.
        delta = prob.copy()
        delta[np.arange(m), y] -= 1.0
        delta /= m
        for layer in range(len(self.weights_) - 1, -1, -1):
            grad_w = activations[layer].T @ delta
            if self.l2:
                grad_w += self.l2 * self.weights_[layer]
            grad_b = delta.sum(axis=0)
            if layer:
                delta = (delta @ self.weights_[layer].T) * (
                    activations[layer] > 0.0
                )
            velocity_w[layer] = (
                self.momentum * velocity_w[layer] - self.learning_rate * grad_w
            )
            velocity_b[layer] = (
                self.momentum * velocity_b[layer] - self.learning_rate * grad_b
            )
            self.weights_[layer] += velocity_w[layer]
            self.biases_[layer] += velocity_b[layer]
        return self._loss(prob, y)

    # -- inference ------------------------------------------------------

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """P(y=1 | x): the softmax probability of the positive unit."""
        if self.weights_ is None:
            raise RuntimeError("fit() first")
        Z = self._standardize(np.asarray(X, dtype=np.float64))
        return self._forward(Z)[-1][:, 1]

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Binary prediction at the probability threshold."""
        return (self.predict_proba(X) >= threshold).astype(int)

    # -- serialization --------------------------------------------------

    def get_params(self) -> dict[str, Any]:
        """JSON-able constructor hyper-parameters (seed excluded)."""
        return {
            "hidden_layers": list(self.hidden_layers),
            "learning_rate": self.learning_rate,
            "momentum": self.momentum,
            "batch_size": self.batch_size,
            "max_epochs": self.max_epochs,
            "patience": self.patience,
            "validation_fraction": self.validation_fraction,
            "tol": self.tol,
            "l2": self.l2,
        }

    def to_state(self) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
        """``(arrays, params)`` capturing exact inference state.

        ``arrays`` holds every float the forward pass reads (weights,
        biases, standardization); ``params`` the JSON-able rest.  Like
        the tree artifacts, RNG state is not preserved: a restored model
        refits from a fresh seed.
        """
        if self.weights_ is None or self.biases_ is None:
            raise RuntimeError("cannot serialize an unfitted MLP")
        arrays: dict[str, np.ndarray] = {
            "mean": self._mean,
            "std": self._std,
        }
        for layer, (W, b) in enumerate(zip(self.weights_, self.biases_)):
            arrays[f"W{layer}"] = W
            arrays[f"b{layer}"] = b
        params = dict(self.get_params())
        params["n_layers"] = len(self.weights_)
        params["n_features"] = self.n_features_
        return arrays, params

    @classmethod
    def from_state(
        cls, arrays: dict[str, np.ndarray], params: dict[str, Any]
    ) -> "MLPClassifier":
        """Rebuild a fitted MLP; ``predict_proba`` is bit-identical to
        the model ``to_state`` was called on."""
        params = dict(params)
        n_layers = int(params.pop("n_layers"))
        n_features = params.pop("n_features", None)
        model = cls(**{k: v for k, v in params.items() if k != "seed"})
        try:
            model.weights_ = [
                np.asarray(arrays[f"W{layer}"], dtype=np.float64)
                for layer in range(n_layers)
            ]
            model.biases_ = [
                np.asarray(arrays[f"b{layer}"], dtype=np.float64)
                for layer in range(n_layers)
            ]
            model._mean = np.asarray(arrays["mean"], dtype=np.float64)
            model._std = np.asarray(arrays["std"], dtype=np.float64)
        except KeyError as error:
            raise ValueError(f"MLP state is missing array {error}") from error
        model.n_features_ = (
            int(n_features)
            if n_features is not None
            else int(model.weights_[0].shape[0])
        )
        return model
