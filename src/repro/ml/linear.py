"""Ordinary least-squares linear regression.

Used only by the prior-work baseline [5], which models a v-pin's expected
match distance as a linear function of its congestion features.
"""

from __future__ import annotations

import numpy as np


class LinearRegression:
    """OLS with intercept, via :func:`numpy.linalg.lstsq`."""

    def __init__(self) -> None:
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearRegression":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if len(X) != len(y):
            raise ValueError("X and y disagree on sample count")
        if len(y) == 0:
            raise ValueError("cannot fit on an empty training set")
        augmented = np.column_stack([X, np.ones(len(X))])
        solution, *_ = np.linalg.lstsq(augmented, y, rcond=None)
        self.coef_ = solution[:-1]
        self.intercept_ = float(solution[-1])
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("fit() first")
        X = np.asarray(X, dtype=float)
        return X @ self.coef_ + self.intercept_
