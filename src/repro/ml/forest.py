"""RandomForest: Bagging over unpruned random trees (Weka default: 100).

This is the classifier of the paper's earlier version [18] ("ML-Imp");
Table II compares it against Bagging-of-REPTrees, which achieves the same
attack quality at a fraction of the runtime.
"""

from __future__ import annotations

import numpy as np

from .bagging import Bagging, RandomTreeFactory
from .tree import DEFAULT_MAX_DEPTH


class RandomForest(Bagging):
    """Bagging with :class:`RandomTree` bases, Weka-default 100 trees."""

    def __init__(
        self,
        n_estimators: int = 100,
        seed: int | np.random.Generator = 0,
        max_depth: int | None = DEFAULT_MAX_DEPTH,
        min_samples_leaf: int = 1,
        engine: str | None = None,
    ) -> None:
        super().__init__(
            base_factory=RandomTreeFactory(
                max_depth=max_depth,
                min_samples_leaf=min_samples_leaf,
                engine=engine,
            ),
            n_estimators=n_estimators,
            seed=seed,
            voting="soft",
        )
        self.fit_engine = engine
