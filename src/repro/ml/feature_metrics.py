"""Feature importance and separability metrics (paper Section IV-A).

Three statistics over (feature column, binary label):

* information gain -- entropy reduction of the label given the feature,
  with the numeric feature discretized by equal-frequency binning;
* absolute Pearson correlation coefficient with the label;
* Fisher's discriminant ratio, ``(mu1 - mu0)^2 / (var1 + var0)`` [10].
"""

from __future__ import annotations

import numpy as np

_EPS = 1e-12


def _entropy(labels: np.ndarray) -> float:
    """Shannon entropy (nats) of a discrete label array."""
    if len(labels) == 0:
        return 0.0
    _, counts = np.unique(labels, return_counts=True)
    p = counts / counts.sum()
    return float(-(p * np.log(np.maximum(p, _EPS))).sum())


def equal_frequency_bins(x: np.ndarray, bins: int = 20) -> np.ndarray:
    """Discretize ``x`` into (up to) ``bins`` equal-frequency bins."""
    if bins < 1:
        raise ValueError("bins must be >= 1")
    if len(x) == 0:
        return np.zeros(0, dtype=int)
    quantiles = np.quantile(x, np.linspace(0, 1, bins + 1)[1:-1])
    edges = np.unique(quantiles)
    return np.searchsorted(edges, x, side="right")


def information_gain(x: np.ndarray, y: np.ndarray, bins: int = 20) -> float:
    """Entropy reduction of ``y`` from knowing the (binned) feature."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y)
    if len(x) != len(y):
        raise ValueError("x and y disagree on sample count")
    if len(x) == 0:
        return 0.0
    binned = equal_frequency_bins(x, bins)
    h_y = _entropy(y)
    h_y_given_x = 0.0
    for value in np.unique(binned):
        mask = binned == value
        h_y_given_x += mask.mean() * _entropy(y[mask])
    return max(0.0, h_y - h_y_given_x)


def abs_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """|Pearson correlation| between the feature and the binary label."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if len(x) != len(y):
        raise ValueError("x and y disagree on sample count")
    if len(x) < 2 or np.std(x) < _EPS or np.std(y) < _EPS:
        return 0.0
    return float(abs(np.corrcoef(x, y)[0, 1]))


def fisher_ratio(x: np.ndarray, y: np.ndarray) -> float:
    """Fisher's discriminant ratio between the two classes of ``y``."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y)
    pos = x[y == 1]
    neg = x[y == 0]
    if len(pos) == 0 or len(neg) == 0:
        return 0.0
    denominator = pos.var() + neg.var()
    if denominator < _EPS:
        return 0.0
    return float((pos.mean() - neg.mean()) ** 2 / denominator)


def rank_features(
    X: np.ndarray,
    y: np.ndarray,
    names: tuple[str, ...],
    bins: int = 20,
) -> dict[str, dict[str, float]]:
    """All three metrics for every feature column.

    Returns ``{feature_name: {"info_gain": .., "correlation": ..,
    "fisher": ..}}``.
    """
    X = np.asarray(X, dtype=float)
    if X.shape[1] != len(names):
        raise ValueError("X and names disagree on feature count")
    return {
        name: {
            "info_gain": information_gain(X[:, k], y, bins),
            "correlation": abs_correlation(X[:, k], y),
            "fisher": fisher_ratio(X[:, k], y),
        }
        for k, name in enumerate(names)
    }
