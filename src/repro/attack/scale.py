"""Paper-scale scoring: sharded, bounded-RSS top-K evaluation.

:func:`evaluate_attack_scaled` runs the no-neighborhood scoring pass the
paper's largest experiments need -- every legal pair of a 1M-cell-class
view through the classifier -- with peak RSS bounded by *one* chunk of
features plus O(n*k) tracker state, no matter how many pairs stream
through:

* the pair triangle is cut into contiguous **row shards** balanced by
  pair count (:func:`shard_rows`), one work item per shard;
* the view's feature columns ship to workers as
  :class:`~repro.runtime.shared.SharedArray` segments -- one copy
  machine-wide, a few bytes per task on the wire;
* each shard streams its rows through a preallocated-buffer
  :class:`~repro.splitmfg.featurize_engine.PairFeaturizer` into a
  per-shard :class:`~repro.attack.topk.TopKTracker` and returns only
  the tracker's fixed-size ``(n, k)`` state;
* the parent merges shard states **in shard order**, so the result is
  identical for every ``--jobs`` setting (ties in merge order depend on
  ``n_shards``, never on scheduling).
"""

from __future__ import annotations

import time

import numpy as np

from ..obs.metrics import counter
from ..obs.trace import span
from ..runtime import parallel_map, release_arrays, share_arrays
from ..splitmfg.featurize_engine import PairFeaturizer
from ..splitmfg.sampling import iter_all_pairs, max_chunk_rows
from ..splitmfg.split import SplitView
from .framework import TrainedAttack
from .result import AttackResult
from .topk import TopKTracker


def shard_rows(n: int, n_shards: int) -> list[tuple[int, int]]:
    """Cut the pair-triangle rows ``[0, n-1)`` into balanced shards.

    Row ``r`` of :func:`~repro.splitmfg.sampling.iter_all_pairs`
    contributes ``n - 1 - r`` pairs, so equal *row* ranges would give the
    first shard nearly all the work; shards are instead cut at equal
    cumulative pair counts.  Returns ``n_shards`` ``(row_lo, row_hi)``
    half-open ranges (some possibly empty for tiny ``n``).
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    last = max(n - 1, 0)
    counts = np.arange(last, 0, -1, dtype=np.int64)
    if counts.size == 0:
        return [(0, 0)] * n_shards
    cum = np.cumsum(counts)
    total = int(cum[-1])
    bounds = [0]
    for s in range(1, n_shards):
        row = int(np.searchsorted(cum, total * s / n_shards))
        bounds.append(max(bounds[-1], min(row, last)))
    bounds.append(last)
    return [(bounds[t], bounds[t + 1]) for t in range(n_shards)]


def _score_shard(payload: tuple) -> tuple[np.ndarray, np.ndarray, int]:
    """Worker: stream one row shard, return top-K state + pair count."""
    cols, model, features, n, row_lo, row_hi, chunk_size, k, engine = payload
    arrays = {name: sa.array for name, sa in cols.items()}
    featurizer = PairFeaturizer(arrays, features, engine=engine)
    buffer = featurizer.out_buffer(max_chunk_rows(n, chunk_size))
    tracker = TopKTracker(n, k)
    n_evaluated = 0
    for i, j in iter_all_pairs(n, chunk_size, row_start=row_lo, row_stop=row_hi):
        i, j, X = featurizer.legal_rows_into(i, j, buffer)
        if len(i) == 0:
            continue
        p = model.predict_proba(X)
        tracker.update(i, j, p)
        n_evaluated += len(i)
    partner, prob = tracker.state()
    return partner, prob, n_evaluated


def evaluate_attack_scaled(
    trained: TrainedAttack,
    view: SplitView,
    k: int = 64,
    chunk_size: int = 400_000,
    jobs: int = 1,
    n_shards: int | None = None,
    engine: str | None = None,
) -> AttackResult:
    """Sharded top-K scoring of every legal pair of ``view``.

    Only the all-pairs testing rule is supported (``trained`` must have
    no neighborhood and no axis limit -- the paper-scale ``ML``
    configurations); the per-v-pin top-``k`` semantics match
    :func:`~repro.attack.topk.evaluate_attack_topk`.  ``n_shards``
    defaults to ``max(jobs, 1)`` and fully determines the result;
    ``jobs`` only decides how many shards run concurrently.
    """
    if trained.neighborhood is not None or trained.limit_axis is not None:
        raise ValueError(
            "evaluate_attack_scaled supports only all-pairs configs "
            "(no neighborhood, no axis limit)"
        )
    if n_shards is None:
        n_shards = max(jobs, 1)
    start = time.perf_counter()
    n = len(view)
    shards = shard_rows(n, n_shards)
    cols = share_arrays(view.arrays())
    try:
        with span(
            "score_scaled",
            design=view.design_name,
            config=trained.config.name,
            shards=n_shards,
        ):
            payloads = [
                (
                    cols,
                    trained.model,
                    trained.config.features,
                    n,
                    lo,
                    hi,
                    chunk_size,
                    k,
                    engine,
                )
                for lo, hi in shards
            ]
            states = parallel_map(_score_shard, payloads, jobs=jobs)
    finally:
        release_arrays(cols)
    tracker = TopKTracker(n, k)
    n_evaluated = 0
    for partner, prob, shard_pairs in states:
        tracker.merge_state(partner, prob)
        n_evaluated += shard_pairs
    counter("pairs_featurized").inc(n_evaluated)
    counter("candidates_scored").inc(n_evaluated)
    pair_i, pair_j, prob = tracker.harvest()
    return AttackResult(
        view=view,
        pair_i=pair_i,
        pair_j=pair_j,
        prob=prob,
        config_name=f"{trained.config.name}+top{k}x{n_shards}",
        train_time=trained.train_time,
        test_time=time.perf_counter() - start,
        n_pairs_evaluated=n_evaluated,
    )
