"""Bounded-memory evaluation: per-v-pin top-K candidate tracking.

At split layer 4 the paper's designs have ~2e5 v-pins; recording all
C(n,2) pair probabilities (as :func:`repro.attack.framework
.evaluate_attack` does) would need ~2e10 entries.  The streaming
evaluator keeps, per v-pin, only its K best-scoring candidates while
chunks flow through the classifier -- memory O(n*K) regardless of how
many pairs are tested, at the cost of losing the exact global threshold
sweep below the per-v-pin cutoff.

For every metric computed above the cutoff the result is *exact*:
a pair survives iff it is in the top-K of at least one of its two
endpoints, and LoC sizes up to K per v-pin are unaffected.
"""

from __future__ import annotations

import time

import numpy as np

from ..splitmfg.featurize_engine import PairFeaturizer
from ..splitmfg.sampling import max_chunk_rows
from ..splitmfg.split import SplitView
from .framework import TrainedAttack, _candidate_chunks
from .result import AttackResult


class TopKTracker:
    """Streaming per-v-pin top-K accumulator.

    Fixed (n, K) arrays of partner ids and probabilities; each ``update``
    merges a chunk.  ``harvest`` returns the union of the per-v-pin lists
    as deduplicated pair arrays.
    """

    def __init__(self, n_vpins: int, k: int) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.n = n_vpins
        self.k = k
        self._partner = np.full((n_vpins, k), -1, dtype=np.int64)
        self._prob = np.full((n_vpins, k), -np.inf)

    def _merge_side(self, ids: np.ndarray, partners: np.ndarray, probs: np.ndarray) -> None:
        # Process each v-pin's new candidates grouped; simple loop over
        # unique ids keeps it O(chunk + touched * K log K).
        order = np.argsort(ids, kind="stable")
        ids, partners, probs = ids[order], partners[order], probs[order]
        boundaries = np.nonzero(np.diff(ids))[0] + 1
        for chunk_ids, chunk_partners, chunk_probs in zip(
            np.split(ids, boundaries),
            np.split(partners, boundaries),
            np.split(probs, boundaries),
        ):
            v = int(chunk_ids[0])
            merged_p = np.concatenate([self._prob[v], chunk_probs])
            merged_partner = np.concatenate([self._partner[v], chunk_partners])
            top = np.argsort(merged_p)[::-1][: self.k]
            self._prob[v] = merged_p[top]
            self._partner[v] = merged_partner[top]

    def update(self, i: np.ndarray, j: np.ndarray, p: np.ndarray) -> None:
        """Merge a scored chunk of pairs (both directions)."""
        if len(i) == 0:
            return
        self._merge_side(i, j, p)
        self._merge_side(j, i, p)

    def state(self) -> tuple[np.ndarray, np.ndarray]:
        """Copies of the raw ``(n, k)`` partner/probability arrays.

        O(n*k) regardless of how many pairs streamed through -- the
        cheap thing to ship back from a worker shard.
        """
        return self._partner.copy(), self._prob.copy()

    def merge_state(self, partner: np.ndarray, prob: np.ndarray) -> None:
        """Merge another tracker's :meth:`state` arrays into this one.

        Merging is order-sensitive only for exact probability ties, so a
        parent that merges shards in a fixed shard order gets the same
        result for any ``--jobs`` setting.
        """
        if partner.shape != (self.n, self.k) or prob.shape != (self.n, self.k):
            raise ValueError(
                f"state shape mismatch: expected {(self.n, self.k)}, "
                f"got {partner.shape} / {prob.shape}"
            )
        ids = np.repeat(np.arange(self.n), self.k)
        partners = np.asarray(partner).ravel()
        probs = np.asarray(prob).ravel()
        valid = partners >= 0
        if valid.any():
            self._merge_side(ids[valid], partners[valid], probs[valid])

    def harvest(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Deduplicated surviving pairs as ``(i, j, prob)`` with i < j."""
        rows = np.repeat(np.arange(self.n), self.k)
        partners = self._partner.ravel()
        probs = self._prob.ravel()
        valid = partners >= 0
        rows, partners, probs = rows[valid], partners[valid], probs[valid]
        lo = np.minimum(rows, partners)
        hi = np.maximum(rows, partners)
        keys = lo * self.n + hi
        _unique, first = np.unique(keys, return_index=True)
        return lo[first], hi[first], probs[first]


def evaluate_attack_topk(
    trained: TrainedAttack,
    view: SplitView,
    k: int = 64,
    chunk_size: int = 400_000,
) -> AttackResult:
    """Streaming counterpart of :func:`repro.attack.framework.evaluate_attack`.

    Produces an :class:`AttackResult` whose pairs are each endpoint's
    top-``k`` candidates; all LoC metrics up to ``k`` candidates per
    v-pin match the exact evaluation.
    """
    start = time.perf_counter()
    arr = view.arrays()
    tracker = TopKTracker(len(view), k)
    featurizer = PairFeaturizer(view, trained.config.features)
    buffer = featurizer.out_buffer(max_chunk_rows(len(view), chunk_size))
    all_pairs = trained.neighborhood is None
    n_evaluated = 0
    for i, j in _candidate_chunks(
        trained, view, chunk_size, filter_legal=not all_pairs
    ):
        if trained.limit_axis == "y":
            aligned = np.abs(arr["vy"][i] - arr["vy"][j]) <= 1e-6
            i, j = i[aligned], j[aligned]
        elif trained.limit_axis == "x":
            aligned = np.abs(arr["vx"][i] - arr["vx"][j]) <= 1e-6
            i, j = i[aligned], j[aligned]
        if all_pairs:
            i, j, X = featurizer.legal_rows_into(i, j, buffer)
        else:
            X = featurizer.rows_into(i, j, buffer)
        if len(i) == 0:
            continue
        p = trained.model.predict_proba(X)
        tracker.update(i, j, p)
        n_evaluated += len(i)
    pair_i, pair_j, prob = tracker.harvest()
    return AttackResult(
        view=view,
        pair_i=pair_i,
        pair_j=pair_j,
        prob=prob,
        config_name=f"{trained.config.name}+top{k}",
        train_time=trained.train_time,
        test_time=time.perf_counter() - start,
        n_pairs_evaluated=n_evaluated,
    )
