"""Netlist-recovery evaluation: from pair predictions to a stolen design.

The attack's business end is not a candidate list but a reconstructed
netlist.  This module closes that loop: an assignment of v-pin pairs
(e.g. from the proximity or global-matching attack) is translated into
recovered BEOL connections, and the reconstruction is scored against the
ground truth at the *net* level -- a net counts as fully recovered only
when every one of its hidden connections was guessed correctly, which is
what an attacker needs before the logic function of that net's cone can
be trusted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..splitmfg.split import SplitView
from .result import AttackResult


@dataclass(frozen=True)
class RecoveryReport:
    """Netlist-level scoring of one reconstruction."""

    design_name: str
    n_connections: int
    n_guessed: int
    n_correct_connections: int
    n_nets: int
    n_fully_recovered_nets: int

    @property
    def connection_rate(self) -> float:
        """Fraction of hidden connections guessed correctly."""
        if self.n_connections == 0:
            return 0.0
        return self.n_correct_connections / self.n_connections

    @property
    def net_recovery_rate(self) -> float:
        """Fraction of cut nets with *all* connections correct."""
        if self.n_nets == 0:
            return 0.0
        return self.n_fully_recovered_nets / self.n_nets


def score_assignment(
    view: SplitView,
    assignment: dict[int, int],
) -> RecoveryReport:
    """Score a per-v-pin partner assignment against the ground truth.

    ``assignment`` maps v-pin id to its guessed partner id (symmetric
    entries are fine; missing entries count as unguessed).
    """
    # Connection = unordered true-match pair.
    true_pairs = {tuple(sorted((v.id, m))) for v in view.vpins for m in v.matches}
    guessed_pairs = {
        tuple(sorted((a, b))) for a, b in assignment.items()
    }
    correct = true_pairs & guessed_pairs
    # Net-level: group true pairs by net.
    by_net: dict[str, set[tuple[int, int]]] = {}
    for pair in true_pairs:
        by_net.setdefault(view.vpins[pair[0]].net, set()).add(pair)
    fully = sum(1 for pairs in by_net.values() if pairs <= correct)
    return RecoveryReport(
        design_name=view.design_name,
        n_connections=len(true_pairs),
        n_guessed=len(guessed_pairs),
        n_correct_connections=len(correct),
        n_nets=len(by_net),
        n_fully_recovered_nets=fully,
    )


def recover_from_matching(
    result: AttackResult,
    min_probability: float = 0.5,
) -> RecoveryReport:
    """Reconstruct via the global matching attack and score it."""
    keep = result.prob >= min_probability
    order = np.argsort(result.prob[keep])[::-1]
    pair_i = result.pair_i[keep][order]
    pair_j = result.pair_j[keep][order]
    assignment: dict[int, int] = {}
    for a, b in zip(pair_i, pair_j):
        a, b = int(a), int(b)
        if a in assignment or b in assignment:
            continue
        assignment[a] = b
        assignment[b] = a
    return score_assignment(result.view, assignment)


def recover_from_proximity(
    result: AttackResult,
    pa_fraction: float = 0.02,
    rng: np.random.Generator | None = None,
) -> RecoveryReport:
    """Reconstruct via independent proximity picks and score them.

    Unlike matching, proximity picks need not be mutually consistent --
    two v-pins can claim the same partner -- which is precisely what this
    evaluation exposes at the net level.
    """
    rng = rng or np.random.default_rng(0)
    view = result.view
    arr = view.arrays()
    candidates = result.per_vpin_candidates()
    n = result.n_vpins
    assignment: dict[int, int] = {}
    for vpin in view.vpins:
        partners, probs = candidates[vpin.id]
        if len(partners) == 0:
            continue
        k = max(1, int(round(pa_fraction * n)))
        if k < len(partners):
            top = np.argpartition(probs, -k)[-k:]
            partners, probs = partners[top], probs[top]
        distance = np.abs(arr["vx"][partners] - arr["vx"][vpin.id]) + np.abs(
            arr["vy"][partners] - arr["vy"][vpin.id]
        )
        nearest = np.nonzero(distance == distance.min())[0]
        pick = int(nearest[rng.integers(len(nearest))]) if len(nearest) > 1 else int(nearest[0])
        assignment[vpin.id] = int(partners[pick])
    # Keep only reciprocal-or-first entries: an assignment dict maps each
    # id to exactly one guess; scoring treats pairs as unordered.
    return score_assignment(view, assignment)
