"""Prior-work baselines the paper compares against.

* :class:`PriorWorkAttack` -- the [5]-style attack: a linear regression
  predicts, from a v-pin's congestion/wirelength features, how far away
  its match should be; *every* v-pin inside that radius is declared a
  candidate.  The radius margin trades LoC size against accuracy, giving
  the baseline curve of Fig. 9.
* :func:`naive_nearest_pa` -- the classic proximity attack [9]: always
  pick the geometrically nearest (legal) v-pin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from ..ml.linear import LinearRegression
from ..splitmfg.split import SplitView


def _vpin_regression_features(view: SplitView) -> np.ndarray:
    """Per-v-pin regressor inputs: congestion and normalized wirelength."""
    arr = view.arrays()
    half_perimeter = view.half_perimeter
    return np.column_stack(
        [
            arr["pc"],
            arr["rc"],
            arr["w"] / half_perimeter,
        ]
    )


class PriorWorkAttack:
    """Linear-regression neighborhood attack in the style of [5]."""

    def __init__(self) -> None:
        self.model = LinearRegression()
        self._fitted = False

    def fit(self, training_views: list[SplitView]) -> "PriorWorkAttack":
        """Regress normalized match distance on per-v-pin features."""
        blocks_X: list[np.ndarray] = []
        blocks_y: list[np.ndarray] = []
        for view in training_views:
            features = _vpin_regression_features(view)
            arr = view.arrays()
            half_perimeter = view.half_perimeter
            for vpin in view.vpins:
                if not vpin.matches:
                    continue
                distances = [
                    abs(arr["vx"][m] - vpin.location.x)
                    + abs(arr["vy"][m] - vpin.location.y)
                    for m in vpin.matches
                ]
                blocks_X.append(features[vpin.id : vpin.id + 1])
                blocks_y.append(np.array([min(distances) / half_perimeter]))
        if not blocks_X:
            raise ValueError("no training matches for the baseline")
        self.model.fit(np.vstack(blocks_X), np.concatenate(blocks_y))
        self._fitted = True
        return self

    def radii(self, view: SplitView, margin: float = 1.0) -> np.ndarray:
        """Predicted per-v-pin candidate radius, scaled by ``margin``."""
        if not self._fitted:
            raise RuntimeError("fit() first")
        predicted = self.model.predict(_vpin_regression_features(view))
        radius = np.maximum(predicted, 0.0) * margin * view.half_perimeter
        # Never collapse below one routing-track pitch worth of slack.
        return np.maximum(radius, 1e-9)

    def evaluate(self, view: SplitView, margin: float = 1.0) -> "PriorResult":
        """LoC sizes and accuracy with all-in-radius candidate lists."""
        radius = self.radii(view, margin)
        arr = view.arrays()
        points = np.column_stack([arr["vx"], arr["vy"]])
        tree = cKDTree(points)
        counts = np.asarray(
            tree.query_ball_point(points, r=radius, p=1, return_length=True),
            dtype=float,
        )
        loc_sizes = counts - 1.0  # not a candidate of itself
        covered = np.zeros(len(view), dtype=bool)
        for vpin in view.vpins:
            if not vpin.matches:
                continue
            best = min(
                abs(arr["vx"][m] - vpin.location.x)
                + abs(arr["vy"][m] - vpin.location.y)
                for m in vpin.matches
            )
            covered[vpin.id] = best <= radius[vpin.id]
        has_match = np.array([bool(v.matches) for v in view.vpins])
        accuracy = float(covered[has_match].mean()) if has_match.any() else 0.0
        return PriorResult(
            view=view,
            margin=margin,
            mean_loc_size=float(loc_sizes.mean()) if len(view) else 0.0,
            accuracy=accuracy,
            radii=radius,
        )

    def curve(
        self, view: SplitView, margins: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """(LoC fraction, accuracy) series over radius margins (Fig. 9)."""
        if margins is None:
            margins = np.logspace(-1.5, 1.5, 25)
        fractions = []
        accuracies = []
        n = max(len(view), 1)
        for margin in margins:
            result = self.evaluate(view, float(margin))
            fractions.append(result.mean_loc_size / n)
            accuracies.append(result.accuracy)
        return np.array(fractions), np.array(accuracies)

    def pa_success_rate(self, view: SplitView, margin: float = 1.0) -> float:
        """Proximity attack over the baseline's radius-limited LoC."""
        radius = self.radii(view, margin)
        return _nearest_within(view, radius)


def _nearest_within(view: SplitView, radius: np.ndarray | None) -> float:
    """Nearest-legal-neighbor PA, optionally limited to per-v-pin radii."""
    arr = view.arrays()
    n = len(view)
    if n < 2:
        return 0.0
    points = np.column_stack([arr["vx"], arr["vy"]])
    tree = cKDTree(points)
    out_area = arr["out_area"]
    k = min(16, n)
    distances, neighbors = tree.query(points, k=k, p=1)
    successes = 0
    evaluated = 0
    for vpin in view.vpins:
        if not vpin.matches:
            continue
        evaluated += 1
        v = vpin.id
        pick = None
        for dist, u in zip(distances[v], neighbors[v]):
            u = int(u)
            if u == v:
                continue
            if out_area[v] > 0 and out_area[u] > 0:
                continue  # illegal driver-driver pair
            if radius is not None and dist > radius[v]:
                break
            pick = u
            break
        if pick is not None and pick in vpin.matches:
            successes += 1
    return successes / evaluated if evaluated else 0.0


def naive_nearest_pa(view: SplitView) -> float:
    """Success rate of the plain nearest-neighbor proximity attack [9]."""
    return _nearest_within(view, None)


@dataclass(frozen=True)
class PriorResult:
    """Baseline outcome at one radius margin."""

    view: SplitView
    margin: float
    mean_loc_size: float
    accuracy: float
    radii: np.ndarray
