"""Obfuscation defenses beyond the paper's y-noise experiment.

Section III-I studies one obfuscation (Gaussian y-noise imitating
perturbed routing).  This module adds the defense family the paper's
references [8], [14], [16] propose, all expressed as transformations of
the attacker-visible :class:`~repro.splitmfg.split.SplitView` so they can
be evaluated under exactly the same attack harness:

* :func:`with_xy_noise` -- isotropic position perturbation (routing
  perturbation on both axes, [14]);
* :func:`with_dummy_vpins` -- dummy via insertion: fake v-pins with no
  hidden connection, diluting the candidate pool ([16]-style decoys);
* :func:`with_feature_scrambling` -- swap the placement-layer attributes
  (px/py, areas, W) between randomly chosen v-pins of compatible
  polarity, imitating pin-swapping obfuscation at the cell level ([8]).

Each transform preserves the ground truth of real v-pins, so attack
metrics before/after quantify the defense's value.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..layout.geometry import Point
from ..splitmfg.split import SplitView, VPin
from ..splitmfg.vpin_features import routing_congestion


def _rebuild(view: SplitView, vpins: list[VPin]) -> SplitView:
    """A new view with the given v-pins and refreshed routing congestion."""
    out = SplitView(
        design_name=view.design_name,
        split_layer=view.split_layer,
        die_width=view.die_width,
        die_height=view.die_height,
        vpins=vpins,
        num_via_layers=view.num_via_layers,
        top_metal_direction=view.top_metal_direction,
    )
    rc = routing_congestion(out)
    for vpin, rc_value in zip(out.vpins, rc):
        vpin.rc = float(rc_value)
    out.invalidate_cache()
    return out


def with_xy_noise(
    view: SplitView,
    sd_fraction: float,
    rng: np.random.Generator,
) -> SplitView:
    """Perturb both v-pin coordinates by Gaussian noise.

    ``sd_fraction`` scales against the corresponding die extent per axis.
    Unlike the paper's y-only noise this also defeats attacks that lean
    on x-track alignment.
    """
    if sd_fraction < 0:
        raise ValueError("sd_fraction must be non-negative")
    if sd_fraction == 0:
        return view
    sd_x = sd_fraction * view.die_width
    sd_y = sd_fraction * view.die_height
    vpins = []
    for vpin in view.vpins:
        x = min(max(vpin.location.x + rng.normal(0, sd_x), 0.0), view.die_width)
        y = min(max(vpin.location.y + rng.normal(0, sd_y), 0.0), view.die_height)
        vpins.append(replace(vpin, location=Point(x, y)))
    return _rebuild(view, vpins)


def with_dummy_vpins(
    view: SplitView,
    fraction: float,
    rng: np.random.Generator,
) -> SplitView:
    """Insert ``fraction * len(view)`` decoy v-pins.

    A decoy copies a real v-pin's feature profile (so it is not trivially
    separable) but sits at a random location and has **no** match; it can
    only inflate LoCs and absorb proximity-attack picks.  Ground-truth
    matches of real v-pins are preserved (decoys get fresh ids at the
    end, so existing ids remain valid).
    """
    if fraction < 0:
        raise ValueError("fraction must be non-negative")
    n_dummy = int(round(fraction * len(view)))
    if n_dummy == 0:
        return view
    vpins = [replace(v) for v in view.vpins]
    templates = rng.integers(len(view), size=n_dummy)
    for offset, template_index in enumerate(templates):
        template = view.vpins[int(template_index)]
        location = Point(
            float(rng.uniform(0, view.die_width)),
            float(rng.uniform(0, view.die_height)),
        )
        vpins.append(
            replace(
                template,
                id=len(view) + offset,
                net=f"__dummy{offset}",
                location=location,
                matches=frozenset(),
            )
        )
    return _rebuild(view, vpins)


def with_feature_scrambling(
    view: SplitView,
    fraction: float,
    rng: np.random.Generator,
) -> SplitView:
    """Swap placement-side attributes between same-polarity v-pin pairs.

    For ``fraction`` of the v-pins, the placement-layer connection point,
    fragment wirelength and areas are exchanged with another randomly
    chosen v-pin of the same polarity (driver/sink side), imitating
    logic-preserving pin swaps.  V-pin locations and ground truth are
    untouched, so only the placement-derived features degrade.
    """
    if not 0 <= fraction <= 1:
        raise ValueError("fraction must be in [0, 1]")
    vpins = [replace(v) for v in view.vpins]
    if fraction == 0 or len(vpins) < 2:
        return _rebuild(view, vpins)
    drivers = [v.id for v in vpins if v.out_area > 0]
    sinks = [v.id for v in vpins if v.out_area == 0]
    for pool in (drivers, sinks):
        n_swap = int(round(fraction * len(pool) / 2))
        if len(pool) < 2:
            continue
        chosen = rng.permutation(len(pool))
        for k in range(n_swap):
            a = vpins[pool[int(chosen[2 * k])]]
            b = vpins[pool[int(chosen[2 * k + 1])]]
            for field in ("pin_location", "fragment_wirelength", "in_area",
                          "out_area", "pc", "pins"):
                tmp = getattr(a, field)
                setattr(a, field, getattr(b, field))
                setattr(b, field, tmp)
    return _rebuild(view, vpins)


def apply_defense_suite(
    views: list[SplitView],
    defense: str,
    strength: float,
    seed: int = 0,
) -> list[SplitView]:
    """Apply a named defense to every view of a suite.

    ``defense`` is one of ``"y-noise"``, ``"xy-noise"``, ``"dummies"``,
    ``"scramble"``.
    """
    from .obfuscation import with_y_noise

    transforms = {
        "y-noise": with_y_noise,
        "xy-noise": with_xy_noise,
        "dummies": with_dummy_vpins,
        "scramble": with_feature_scrambling,
    }
    if defense not in transforms:
        raise ValueError(
            f"unknown defense {defense!r}; choose from {sorted(transforms)}"
        )
    rng = np.random.default_rng(seed)
    transform = transforms[defense]
    return [transform(view, strength, rng) for view in views]
