"""Training and evaluation driver for the machine-learning attack.

Implements the paper's Fig. 1 pipeline around a trained classifier:

* :func:`train_attack` -- build the balanced training set from the
  training views (with the Imp neighborhood and/or the "Y" limit when the
  configuration asks for them) and fit the Bagging classifier;
* :func:`evaluate_attack` -- enumerate candidate pairs of a test view
  (all legal pairs for ``ML``, neighborhood pairs for ``Imp``), classify
  them in bounded-memory chunks, and record the probability of every pair
  (Section III-F: thresholds are applied *afterwards*);
* :func:`run_loo` -- leave-one-out cross validation over a suite.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..ml.bagging import Bagging
from ..ml.tree import RandomTree
from ..splitmfg.pair_features import compute_pair_features, legal_pair_mask
from ..splitmfg.sampling import (
    COORD_TOL,
    NeighborhoodIndex,
    build_training_set,
    iter_all_pairs,
    neighborhood_fraction,
    neighborhood_radius,
)
from ..splitmfg.split import SplitView
from .config import AttackConfig
from .result import AttackResult

DEFAULT_CHUNK_SIZE = 400_000


def make_classifier(config: AttackConfig, seed: int) -> Bagging:
    """The configured Bagging classifier (REPTree or RandomTree bases)."""
    if config.base_classifier == "randomtree":
        return Bagging(
            base_factory=lambda rng: RandomTree(min_samples_leaf=1, seed=rng),
            n_estimators=config.n_estimators,
            seed=seed,
            voting=config.voting,
        )
    return Bagging(n_estimators=config.n_estimators, seed=seed, voting=config.voting)


def _limit_axis(config: AttackConfig, views: list[SplitView]) -> str | None:
    """Validate and resolve the "Y" limit for these views."""
    if not config.limit_top_axis:
        return None
    axes = {view.aligned_axis for view in views}
    if axes == {None} or None in axes:
        raise ValueError(
            f"configuration {config.name} limits the top-layer axis but the "
            f"split is not at the highest via layer"
        )
    if len(axes) != 1:
        raise ValueError("views disagree on the aligned axis")
    return axes.pop()


@dataclass
class TrainedAttack:
    """A fitted classifier plus the preprocessing decisions it was fit with."""

    config: AttackConfig
    model: Bagging
    neighborhood: float | None
    limit_axis: str | None
    train_time: float
    n_training_samples: int


def train_attack(
    config: AttackConfig,
    training_views: list[SplitView],
    seed: int = 0,
    allowed: list[np.ndarray] | None = None,
) -> TrainedAttack:
    """Fit the attack classifier on the training views."""
    if not training_views:
        raise ValueError("need at least one training view")
    start = time.perf_counter()
    rng = np.random.default_rng(seed)
    axis = _limit_axis(config, training_views)
    fraction = (
        neighborhood_fraction(training_views, config.neighborhood_percentile)
        if config.scalable
        else None
    )
    training_set = build_training_set(
        training_views,
        config.features,
        rng,
        neighborhood=fraction,
        y_aligned_only=axis == "y",
        x_aligned_only=axis == "x",
        allowed=allowed,
    )
    model = make_classifier(config, seed=int(rng.integers(2**63)))
    model.fit(training_set.X, training_set.y)
    return TrainedAttack(
        config=config,
        model=model,
        neighborhood=fraction,
        limit_axis=axis,
        train_time=time.perf_counter() - start,
        n_training_samples=training_set.n_samples,
    )


def _candidate_chunks(
    trained: TrainedAttack,
    view: SplitView,
    chunk_size: int,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Candidate pair chunks per the configuration's testing rule."""
    if trained.neighborhood is not None:
        radius = neighborhood_radius(view, trained.neighborhood)
        i, j = NeighborhoodIndex(view, radius).candidate_pairs()
        for start in range(0, len(i), chunk_size):
            yield i[start : start + chunk_size], j[start : start + chunk_size]
    else:
        for i, j in iter_all_pairs(len(view), chunk_size):
            legal = legal_pair_mask(view, i, j)
            yield i[legal], j[legal]


def evaluate_attack(
    trained: TrainedAttack,
    view: SplitView,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> AttackResult:
    """Classify the test view's candidate pairs and record probabilities.

    Pairs violating the "Y" limit (when active) are classified as
    disconnected without testing -- they simply never enter the result,
    which is also what halves the runtime in Table IV.
    """
    start = time.perf_counter()
    arr = view.arrays()
    out_i: list[np.ndarray] = []
    out_j: list[np.ndarray] = []
    out_p: list[np.ndarray] = []
    n_evaluated = 0
    for i, j in _candidate_chunks(trained, view, chunk_size):
        if trained.limit_axis == "y":
            aligned = np.abs(arr["vy"][i] - arr["vy"][j]) <= COORD_TOL
            i, j = i[aligned], j[aligned]
        elif trained.limit_axis == "x":
            aligned = np.abs(arr["vx"][i] - arr["vx"][j]) <= COORD_TOL
            i, j = i[aligned], j[aligned]
        if len(i) == 0:
            continue
        X = compute_pair_features(view, i, j, trained.config.features)
        p = trained.model.predict_proba(X)
        n_evaluated += len(i)
        out_i.append(i)
        out_j.append(j)
        out_p.append(p)
    if out_i:
        pair_i = np.concatenate(out_i)
        pair_j = np.concatenate(out_j)
        prob = np.concatenate(out_p)
    else:
        pair_i = np.zeros(0, dtype=int)
        pair_j = np.zeros(0, dtype=int)
        prob = np.zeros(0)
    return AttackResult(
        view=view,
        pair_i=pair_i,
        pair_j=pair_j,
        prob=prob,
        config_name=trained.config.name,
        train_time=trained.train_time,
        test_time=time.perf_counter() - start,
        n_pairs_evaluated=n_evaluated,
    )


def loo_folds(
    views: list[SplitView],
) -> Iterator[tuple[SplitView, list[SplitView]]]:
    """Yield ``(test_view, training_views)`` for leave-one-out CV."""
    for k, test_view in enumerate(views):
        yield test_view, views[:k] + views[k + 1 :]


def run_loo(
    config: AttackConfig,
    views: list[SplitView],
    seed: int = 0,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> list[AttackResult]:
    """Leave-one-out evaluation of one configuration over a suite."""
    if len(views) < 2:
        raise ValueError("leave-one-out needs at least two views")
    results = []
    for fold, (test_view, training_views) in enumerate(loo_folds(views)):
        trained = train_attack(config, training_views, seed=seed + fold)
        results.append(evaluate_attack(trained, test_view, chunk_size))
    return results
