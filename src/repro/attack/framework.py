"""Training and evaluation driver for the machine-learning attack.

Implements the paper's Fig. 1 pipeline around a trained classifier:

* :func:`train_attack` -- build the balanced training set from the
  training views (with the Imp neighborhood and/or the "Y" limit when the
  configuration asks for them) and fit the Bagging classifier;
* :func:`evaluate_attack` -- enumerate candidate pairs of a test view
  (all legal pairs for ``ML``, neighborhood pairs for ``Imp``), classify
  them in bounded-memory chunks, and record the probability of every pair
  (Section III-F: thresholds are applied *afterwards*);
* :func:`run_loo` -- leave-one-out cross validation over a suite.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from ..ml.backends import ClassifierBackend, create_backend
from ..ml.fit_engine import active_engine
from ..obs.logging import get_logger
from ..obs.metrics import counter
from ..obs.trace import span
from ..runtime import (
    MAX_CHUNKED_BYTES,
    FeatureCache,
    code_fingerprint,
    get_default_cache,
    hash_key,
    parallel_map,
    spawn_seeds,
    view_content_hash,
)
from ..splitmfg.featurize_engine import PairFeaturizer
from ..splitmfg.pair_features import legal_pair_mask
from ..splitmfg.sampling import (
    COORD_TOL,
    NeighborhoodIndex,
    TrainingSet,
    build_training_set,
    iter_all_pairs,
    max_chunk_rows,
    neighborhood_fraction,
    neighborhood_radius,
)
from ..splitmfg.split import SplitView
from .config import AttackConfig
from .result import AttackResult

DEFAULT_CHUNK_SIZE = 400_000

logger = get_logger("attack.framework")


def make_backend(config: AttackConfig) -> "ClassifierBackend":
    """The unfitted classifier backend named by ``config.backend``.

    Resolution goes through the :mod:`repro.ml.backends` registry; for
    the default ``bagging`` backend, the config's historical ensemble
    knobs (``n_estimators``/``base_classifier``/``voting``) are
    forwarded unless ``backend_params`` overrides them.
    """
    params = dict(config.backend_params)
    if config.backend == "bagging":
        params.setdefault("n_estimators", config.n_estimators)
        params.setdefault("voting", config.voting)
        params.setdefault("base", config.base_classifier)
    return create_backend(config.backend, **params)


def make_classifier(config: AttackConfig, seed: int):
    """The configured classifier, constructed via the backend registry.

    Every backend receives ``seed`` through the same path (deterministic
    backends ignore it); for the default configs this builds exactly the
    Bagging ensembles the paper uses, bit-identical to the pre-registry
    construction.
    """
    return make_backend(config).build(seed)


def _limit_axis(config: AttackConfig, views: list[SplitView]) -> str | None:
    """Validate and resolve the "Y" limit for these views."""
    if not config.limit_top_axis:
        return None
    axes = {view.aligned_axis for view in views}
    if axes == {None} or None in axes:
        raise ValueError(
            f"configuration {config.name} limits the top-layer axis but the "
            f"split is not at the highest via layer"
        )
    if len(axes) != 1:
        raise ValueError("views disagree on the aligned axis")
    return axes.pop()


@dataclass
class TrainedAttack:
    """A fitted classifier plus the preprocessing decisions it was fit with.

    ``model`` is whatever the configured backend built -- a tree
    ensemble, an MLP, or any duck-typed object with ``predict_proba``.
    """

    config: AttackConfig
    model: Any
    neighborhood: float | None
    limit_axis: str | None
    train_time: float
    n_training_samples: int


def _training_set_key(
    config: AttackConfig,
    training_views: list[SplitView],
    fraction: float | None,
    axis: str | None,
    seed: int,
    allowed: list[np.ndarray] | None,
) -> str:
    """Cache key for the featurized, balanced training matrices."""
    return hash_key(
        "training-set",
        code_fingerprint(),
        [view_content_hash(view) for view in training_views],
        list(config.features),
        fraction,
        axis,
        seed,
        None if allowed is None else [np.asarray(m, dtype=bool) for m in allowed],
    )


def train_attack(
    config: AttackConfig,
    training_views: list[SplitView],
    seed: int = 0,
    allowed: list[np.ndarray] | None = None,
    cache: FeatureCache | None = None,
) -> TrainedAttack:
    """Fit the attack classifier on the training views.

    The sampling stream and the model seed are derived as *independent*
    children of ``seed`` (``SeedSequence.spawn``): the fitted model is
    identical whether the training matrices were rebuilt or restored
    from ``cache`` (the process default cache when ``None``).
    """
    if not training_views:
        raise ValueError("need at least one training view")
    start = time.perf_counter()
    if cache is None:
        cache = get_default_cache()
    with span("train", config=config.name, n_views=len(training_views)) as outer:
        sample_sequence, model_sequence = np.random.SeedSequence(seed).spawn(2)
        axis = _limit_axis(config, training_views)
        fraction = (
            neighborhood_fraction(training_views, config.neighborhood_percentile)
            if config.scalable
            else None
        )
        key: str | None = None
        training_set: TrainingSet | None = None
        with span("build_training_set") as build:
            if cache is not None:
                key = _training_set_key(
                    config, training_views, fraction, axis, seed, allowed
                )
                stored = cache.get(key)
                if stored is not None:
                    training_set = TrainingSet(
                        X=stored["X"], y=stored["y"], features=config.features
                    )
            source = "cache"
            if training_set is None:
                source = "featurized"
                training_set = build_training_set(
                    training_views,
                    config.features,
                    np.random.default_rng(sample_sequence),
                    neighborhood=fraction,
                    y_aligned_only=axis == "y",
                    x_aligned_only=axis == "x",
                    allowed=allowed,
                )
                counter("pairs_featurized").inc(training_set.n_samples)
                if cache is not None and key is not None:
                    cache.put(key, {"X": training_set.X, "y": training_set.y})
            build.set(source=source, n_samples=training_set.n_samples)
        with span(
            "fit",
            backend=config.backend,
            n_estimators=config.n_estimators,
            engine=active_engine(),
        ):
            model_seed = int(
                np.random.default_rng(model_sequence).integers(2**63)
            )
            model = make_classifier(config, seed=model_seed)
            model.fit(training_set.X, training_set.y)
        outer.set(n_samples=training_set.n_samples)
        logger.debug(
            "trained %s",
            config.name,
            extra={
                "config": config.name,
                "n_samples": training_set.n_samples,
                "training_set": source,
            },
        )
    return TrainedAttack(
        config=config,
        model=model,
        neighborhood=fraction,
        limit_axis=axis,
        train_time=time.perf_counter() - start,
        n_training_samples=training_set.n_samples,
    )


def _candidate_chunks(
    trained: TrainedAttack,
    view: SplitView,
    chunk_size: int,
    filter_legal: bool = True,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Candidate pair chunks per the configuration's testing rule.

    ``filter_legal=False`` skips the all-pairs legality mask so a caller
    can fold it into featurization instead
    (:meth:`~repro.splitmfg.featurize_engine.PairFeaturizer
    .legal_rows_into`); neighborhood chunks come from the KD-tree
    pre-filtered either way.  Masks preserve pair order, so the union of
    the surviving pairs is identical for both settings.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    if trained.neighborhood is not None:
        radius = neighborhood_radius(view, trained.neighborhood)
        i, j = NeighborhoodIndex(view, radius).candidate_pairs()
        for start in range(0, len(i), chunk_size):
            yield i[start : start + chunk_size], j[start : start + chunk_size]
    else:
        for i, j in iter_all_pairs(len(view), chunk_size):
            if filter_legal:
                legal = legal_pair_mask(view, i, j)
                yield i[legal], j[legal]
            else:
                yield i, j


def _candidate_key(trained: TrainedAttack, view: SplitView) -> str:
    """Cache key for a view's featurized candidate pairs.

    The key covers everything the candidate matrix depends on: the test
    view's content, the feature set, and the testing rule (neighborhood
    fraction and "Y" limit).  It does *not* depend on the classifier, so
    every configuration sharing a testing rule reuses the entry.
    """
    return hash_key(
        "candidates",
        code_fingerprint(),
        view_content_hash(view),
        list(trained.config.features),
        trained.neighborhood,
        trained.limit_axis,
    )


def evaluate_attack(
    trained: TrainedAttack,
    view: SplitView,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    cache: FeatureCache | None = None,
) -> AttackResult:
    """Classify the test view's candidate pairs and record probabilities.

    Pairs violating the "Y" limit (when active) are classified as
    disconnected without testing -- they simply never enter the result,
    which is also what halves the runtime in Table IV.

    When a feature cache is available (explicitly or via the process
    default), the featurized candidate matrix is restored from disk on a
    hit and stored after a miss; probabilities are identical either way
    because every tree scores rows independently.  Candidate matrices
    are stored *chunk-addressed* (one ``.npz`` per scored chunk plus an
    index entry written last), so neither the store nor the replay path
    ever materializes the full matrix: peak RSS is one chunk's features
    plus the accumulated ``(i, j, prob)`` result arrays, whatever the
    design size.
    """
    start = time.perf_counter()
    if cache is None:
        cache = get_default_cache()
    with span(
        "evaluate", design=view.design_name, config=trained.config.name
    ) as outer:
        key = _candidate_key(trained, view) if cache is not None else None
        stored = (
            cache.get(key) if cache is not None and key is not None else None
        )
        out_i: list[np.ndarray] = []
        out_j: list[np.ndarray] = []
        out_p: list[np.ndarray] = []
        n_evaluated = 0
        replayed = False
        if stored is not None and ("X" in stored or "n_chunks" in stored):
            with span("score", candidates="cache"):
                if "X" in stored:  # legacy single-entry format
                    pair_i, pair_j = stored["i"], stored["j"]
                    X_all = stored["X"]
                    for begin in range(0, len(pair_i), chunk_size):
                        out_p.append(
                            trained.model.predict_proba(
                                X_all[begin : begin + chunk_size]
                            )
                        )
                    prob = np.concatenate(out_p) if out_p else np.zeros(0)
                    n_evaluated = len(pair_i)
                    replayed = True
                else:
                    replayed = True
                    for index in range(int(stored["n_chunks"])):
                        entry = cache.get_chunk(key, index)
                        if entry is None:  # family incomplete: re-featurize
                            out_i, out_j, out_p = [], [], []
                            replayed = False
                            break
                        out_i.append(entry["i"])
                        out_j.append(entry["j"])
                        out_p.append(trained.model.predict_proba(entry["X"]))
                    if replayed:
                        if out_i:
                            pair_i = np.concatenate(out_i)
                            pair_j = np.concatenate(out_j)
                            prob = np.concatenate(out_p)
                        else:
                            pair_i = np.zeros(0, dtype=int)
                            pair_j = np.zeros(0, dtype=int)
                            prob = np.zeros(0)
                        n_evaluated = len(pair_i)
        if not replayed:
            arr = view.arrays()
            featurizer = PairFeaturizer(view, trained.config.features)
            buffer = featurizer.out_buffer(
                max_chunk_rows(len(view), chunk_size)
            )
            all_pairs = trained.neighborhood is None
            caching = cache is not None and key is not None
            stored_bytes = 0
            n_chunks = 0
            out_i, out_j, out_p = [], [], []
            with span(
                "score", candidates="featurized", engine=featurizer.engine
            ):
                for i, j in _candidate_chunks(
                    trained, view, chunk_size, filter_legal=not all_pairs
                ):
                    if trained.limit_axis == "y":
                        aligned = np.abs(arr["vy"][i] - arr["vy"][j]) <= COORD_TOL
                        i, j = i[aligned], j[aligned]
                    elif trained.limit_axis == "x":
                        aligned = np.abs(arr["vx"][i] - arr["vx"][j]) <= COORD_TOL
                        i, j = i[aligned], j[aligned]
                    if all_pairs:
                        # Legality folds into the featurization pass;
                        # masks commute, so (i, j, X) match the legacy
                        # legality-first order exactly.
                        i, j, X = featurizer.legal_rows_into(i, j, buffer)
                    else:
                        X = featurizer.rows_into(i, j, buffer)
                    if len(i) == 0:
                        continue
                    p = trained.model.predict_proba(X)
                    n_evaluated += len(i)
                    out_i.append(i)
                    out_j.append(j)
                    out_p.append(p)
                    if caching:
                        chunk_bytes = i.nbytes + j.nbytes + X.nbytes
                        if stored_bytes + chunk_bytes > MAX_CHUNKED_BYTES:
                            caching = False  # no index: family discarded
                        else:
                            caching = cache.put_chunk(
                                key, n_chunks, {"i": i, "j": j, "X": X}
                            )
                            if caching:
                                stored_bytes += chunk_bytes
                                n_chunks += 1
            counter("pairs_featurized").inc(n_evaluated)
            if out_i:
                pair_i = np.concatenate(out_i)
                pair_j = np.concatenate(out_j)
                prob = np.concatenate(out_p)
            else:
                pair_i = np.zeros(0, dtype=int)
                pair_j = np.zeros(0, dtype=int)
                prob = np.zeros(0)
            if caching:
                cache.put(key, {"n_chunks": np.array(n_chunks)})
        counter("candidates_scored").inc(n_evaluated)
        outer.set(n_pairs=n_evaluated)
        logger.debug(
            "evaluated %s",
            view.design_name,
            extra={"design": view.design_name, "n_pairs": n_evaluated},
        )
    return AttackResult(
        view=view,
        pair_i=pair_i,
        pair_j=pair_j,
        prob=prob,
        config_name=trained.config.name,
        train_time=trained.train_time,
        test_time=time.perf_counter() - start,
        n_pairs_evaluated=n_evaluated,
    )


def loo_folds(
    views: list[SplitView],
) -> Iterator[tuple[SplitView, list[SplitView]]]:
    """Yield ``(test_view, training_views)`` for leave-one-out CV."""
    for k, test_view in enumerate(views):
        yield test_view, views[:k] + views[k + 1 :]


def _run_loo_fold(
    task: tuple[AttackConfig, list[SplitView], int, int, int, FeatureCache | None],
) -> AttackResult:
    """One LOOCV fold, self-contained so a pool worker can run it."""
    config, views, fold, fold_seed, chunk_size, cache = task
    test_view = views[fold]
    training_views = views[:fold] + views[fold + 1 :]
    with span(
        "fold", fold=fold, design=test_view.design_name, config=config.name
    ):
        trained = train_attack(
            config, training_views, seed=fold_seed, cache=cache
        )
        result = evaluate_attack(trained, test_view, chunk_size, cache=cache)
    counter("folds_completed").inc()
    return result


def run_loo(
    config: AttackConfig,
    views: list[SplitView],
    seed: int = 0,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    jobs: int = 1,
    cache: FeatureCache | None = None,
) -> list[AttackResult]:
    """Leave-one-out evaluation of one configuration over a suite.

    Folds are independent: ``jobs > 1`` runs them on a process pool.
    Fold seeds are spawned from ``seed`` up front, so the results are
    bit-identical for every ``jobs`` value (timings aside).
    """
    if len(views) < 2:
        raise ValueError("leave-one-out needs at least two views")
    if cache is None:
        cache = get_default_cache()
    seeds = spawn_seeds(seed, len(views))
    tasks = [
        (config, views, fold, seeds[fold], chunk_size, cache)
        for fold in range(len(views))
    ]
    with span("loo", config=config.name, n_folds=len(views), jobs=jobs):
        return parallel_map(_run_loo_fold, tasks, jobs=jobs)
