"""The machine-learning split-manufacturing attack (paper core)."""

from .baselines import PriorResult, PriorWorkAttack, naive_nearest_pa
from .config import (
    ALL_CONFIGS,
    CONFIGS_BY_NAME,
    IMP_7,
    IMP_7Y,
    IMP_9,
    IMP_9Y,
    IMP_11,
    IMP_11Y,
    LIMIT_CONFIGS,
    ML_9,
    ML_9Y,
    PRIMARY_CONFIGS,
    AttackConfig,
)
from .defenses import (
    apply_defense_suite,
    with_dummy_vpins,
    with_feature_scrambling,
    with_xy_noise,
)
from .framework import (
    TrainedAttack,
    evaluate_attack,
    loo_folds,
    make_classifier,
    run_loo,
    train_attack,
)
from .matching import (
    MatchingOutcome,
    connected_component_sizes,
    distance_weighted_matching_attack,
    global_matching_attack,
)
from .obfuscation import obfuscate_suite, with_y_noise
from .proximity import (
    DEFAULT_PA_FRACTIONS,
    ValidatedPA,
    pa_success_rate,
    run_validated_pa,
    validate_pa_fraction,
)
from .recovery import (
    RecoveryReport,
    recover_from_matching,
    recover_from_proximity,
    score_assignment,
)
from .result import AttackResult, AttackSummary, summarize
from .scale import evaluate_attack_scaled, shard_rows
from .topk import TopKTracker, evaluate_attack_topk
from .two_level import (
    TrainedLevel2,
    TwoLevelOutcome,
    apply_two_level,
    run_two_level_fold,
    train_two_level,
)

__all__ = [
    "ALL_CONFIGS",
    "AttackConfig",
    "AttackResult",
    "AttackSummary",
    "CONFIGS_BY_NAME",
    "DEFAULT_PA_FRACTIONS",
    "IMP_11",
    "IMP_11Y",
    "IMP_7",
    "IMP_7Y",
    "IMP_9",
    "IMP_9Y",
    "LIMIT_CONFIGS",
    "ML_9",
    "ML_9Y",
    "MatchingOutcome",
    "PRIMARY_CONFIGS",
    "PriorResult",
    "PriorWorkAttack",
    "RecoveryReport",
    "TopKTracker",
    "TrainedAttack",
    "TrainedLevel2",
    "TwoLevelOutcome",
    "ValidatedPA",
    "apply_defense_suite",
    "apply_two_level",
    "connected_component_sizes",
    "distance_weighted_matching_attack",
    "evaluate_attack",
    "evaluate_attack_scaled",
    "evaluate_attack_topk",
    "global_matching_attack",
    "loo_folds",
    "make_classifier",
    "naive_nearest_pa",
    "obfuscate_suite",
    "pa_success_rate",
    "recover_from_matching",
    "recover_from_proximity",
    "run_loo",
    "run_two_level_fold",
    "run_validated_pa",
    "score_assignment",
    "shard_rows",
    "summarize",
    "train_attack",
    "train_two_level",
    "validate_pa_fraction",
    "with_dummy_vpins",
    "with_feature_scrambling",
    "with_xy_noise",
    "with_y_noise",
]
