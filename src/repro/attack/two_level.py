"""Two-level pruning (paper Section III-E).

A Level-2 classifier is trained on "high-quality" negatives: for every
v-pin of the *training* designs, one random non-matching v-pin from its
Level-1 LoC -- i.e. a pair the Level-1 model could not tell apart.  At
test time the Level-2 model re-scores only the pairs inside the Level-1
LoC of the held-out design.

The cross-validation legality subtlety the paper stresses is respected:
the Level-1 LoCs used to mine hard negatives are generated on the
*training* designs only; the held-out design is touched exactly once, at
final testing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..splitmfg.pair_features import compute_pair_features
from ..splitmfg.sampling import positive_pairs
from ..splitmfg.split import SplitView
from .config import AttackConfig
from .framework import TrainedAttack, evaluate_attack, make_classifier, train_attack
from .result import AttackResult


@dataclass
class TwoLevelOutcome:
    """Both results for one fold: plain Level-1 and two-level pruning."""

    level1: AttackResult
    two_level: AttackResult


def _hard_negatives(
    result: AttackResult,
    rng: np.random.Generator,
    threshold: float,
) -> tuple[np.ndarray, np.ndarray]:
    """One random non-matching Level-1-LoC partner per v-pin."""
    keep = result.prob >= threshold
    pair_i = result.pair_i[keep]
    pair_j = result.pair_j[keep]
    is_match = result.is_match()[keep]
    candidates: list[list[int]] = [[] for _ in range(result.n_vpins)]
    for i, j, m in zip(pair_i, pair_j, is_match):
        if m:
            continue
        candidates[i].append(int(j))
        candidates[j].append(int(i))
    out_i: list[int] = []
    out_j: list[int] = []
    for v, partners in enumerate(candidates):
        if partners:
            out_i.append(v)
            out_j.append(int(partners[rng.integers(len(partners))]))
    return np.array(out_i, dtype=int), np.array(out_j, dtype=int)


def train_two_level(
    config: AttackConfig,
    training_views: list[SplitView],
    seed: int = 0,
    level1_threshold: float = 0.5,
) -> tuple[TrainedAttack, "TrainedLevel2"]:
    """Fit Level-1 normally, then Level-2 on LoC-mined hard negatives."""
    rng = np.random.default_rng(seed)
    level1 = train_attack(config, training_views, seed=seed)
    blocks_X: list[np.ndarray] = []
    blocks_y: list[np.ndarray] = []
    for view in training_views:
        result = evaluate_attack(level1, view)
        neg_i, neg_j = _hard_negatives(result, rng, level1_threshold)
        pos_i, pos_j = positive_pairs(view)
        if config.limit_top_axis and len(pos_i):
            arr = view.arrays()
            key = "vy" if level1.limit_axis == "y" else "vx"
            keep = np.abs(arr[key][pos_i] - arr[key][pos_j]) <= 1e-6
            pos_i, pos_j = pos_i[keep], pos_j[keep]
        # Keep the Level-2 set balanced (the paper's [4] principle): one
        # hard negative per v-pin can exceed the positive count, since
        # every *pair* contributes two v-pins.
        if len(neg_i) > len(pos_i) > 0:
            pick = rng.choice(len(neg_i), size=len(pos_i), replace=False)
            neg_i, neg_j = neg_i[pick], neg_j[pick]
        if len(pos_i):
            blocks_X.append(compute_pair_features(view, pos_i, pos_j, config.features))
            blocks_y.append(np.ones(len(pos_i)))
        if len(neg_i):
            blocks_X.append(compute_pair_features(view, neg_i, neg_j, config.features))
            blocks_y.append(np.zeros(len(neg_i)))
    if not blocks_X:
        raise ValueError("no Level-2 training samples")
    model = make_classifier(config, seed=int(rng.integers(2**63)))
    model.fit(np.vstack(blocks_X), np.concatenate(blocks_y))
    return level1, TrainedLevel2(config=config, model=model)


@dataclass
class TrainedLevel2:
    """The Level-2 re-scorer."""

    config: AttackConfig
    model: object  # Bagging


def apply_two_level(
    level1: TrainedAttack,
    level2: TrainedLevel2,
    view: SplitView,
    level1_threshold: float = 0.5,
) -> TwoLevelOutcome:
    """Score the held-out view with both levels.

    The two-level result keeps only pairs inside the Level-1 LoC and
    carries the Level-2 probabilities, so LoC-size control applies to the
    final (pruned) candidate lists.
    """
    level1_result = evaluate_attack(level1, view)
    start = time.perf_counter()
    keep = level1_result.prob >= level1_threshold
    pair_i = level1_result.pair_i[keep]
    pair_j = level1_result.pair_j[keep]
    if len(pair_i):
        X = compute_pair_features(view, pair_i, pair_j, level2.config.features)
        prob = level2.model.predict_proba(X)
    else:
        prob = np.zeros(0)
    two_level_result = AttackResult(
        view=view,
        pair_i=pair_i,
        pair_j=pair_j,
        prob=prob,
        config_name=f"{level2.config.name}+2L",
        train_time=level1_result.train_time,
        test_time=level1_result.test_time + time.perf_counter() - start,
        n_pairs_evaluated=level1_result.n_pairs_evaluated + len(pair_i),
    )
    return TwoLevelOutcome(level1=level1_result, two_level=two_level_result)


def run_two_level_fold(
    config: AttackConfig,
    views: list[SplitView],
    test_index: int,
    seed: int = 0,
    level1_threshold: float = 0.5,
) -> TwoLevelOutcome:
    """One leave-one-out fold of the two-level procedure."""
    test_view = views[test_index]
    training_views = views[:test_index] + views[test_index + 1 :]
    level1, level2 = train_two_level(
        config, training_views, seed=seed, level1_threshold=level1_threshold
    )
    return apply_two_level(level1, level2, test_view, level1_threshold)
