"""Proximity attack (paper Section III-H).

PA must commit to exactly *one* candidate per target v-pin: the
geometrically nearest member of a per-v-pin **PA-LoC** (ties broken by
higher classifier probability, then randomly).  The PA-LoC is the top
``fraction * n_vpins`` candidates by probability; the fraction itself is
chosen by the paper's validation procedure -- an 80/20 v-pin split of the
training designs, scanning a grid of fractions and keeping the one with
the best validation success rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..splitmfg.split import SplitView
from .config import AttackConfig
from .framework import evaluate_attack, train_attack
from .result import AttackResult

#: Default PA-LoC fraction grid scanned during validation.
DEFAULT_PA_FRACTIONS: tuple[float, ...] = (
    0.001,
    0.002,
    0.005,
    0.01,
    0.02,
    0.05,
    0.10,
)


def pa_success_rate(
    result: AttackResult,
    pa_fraction: float | None = None,
    threshold: float = 0.5,
    targets: np.ndarray | None = None,
    rng: np.random.Generator | None = None,
) -> float:
    """Success rate of the proximity attack on one result.

    With ``pa_fraction`` the PA-LoC of every target is its top
    ``max(1, round(fraction * n))`` candidates by probability; otherwise a
    fixed probability ``threshold`` is used (the [18] baseline behaviour).
    """
    rng = rng or np.random.default_rng(0)
    n = result.n_vpins
    if n == 0:
        return 0.0
    arr = result.view.arrays()
    candidates = result.per_vpin_candidates()
    target_ids = np.arange(n) if targets is None else np.asarray(targets, dtype=int)
    successes = 0
    evaluated = 0
    for v in target_ids:
        vpin = result.view.vpins[v]
        if not vpin.matches:
            continue
        evaluated += 1
        partners, probs = candidates[v]
        if len(partners) == 0:
            continue
        if pa_fraction is not None:
            k = max(1, int(round(pa_fraction * n)))
            if k < len(partners):
                top = np.argpartition(probs, -k)[-k:]
                partners, probs = partners[top], probs[top]
        else:
            keep = probs >= threshold
            partners, probs = partners[keep], probs[keep]
            if len(partners) == 0:
                continue
        distance = np.abs(arr["vx"][partners] - arr["vx"][v]) + np.abs(
            arr["vy"][partners] - arr["vy"][v]
        )
        nearest = distance == distance.min()
        if nearest.sum() > 1:
            best_p = probs[nearest].max()
            tie = nearest & (probs == best_p)
            choices = np.nonzero(tie)[0]
            pick = int(choices[rng.integers(len(choices))])
        else:
            pick = int(np.argmax(nearest))
        if int(partners[pick]) in vpin.matches:
            successes += 1
    return successes / evaluated if evaluated else 0.0


@dataclass
class ValidatedPA:
    """Outcome of the validation-based proximity attack for one fold."""

    design_name: str
    config_name: str
    best_fraction: float
    validation_rates: dict[float, float]
    success_rate: float
    validation_time: float
    attack_time: float


def validate_pa_fraction(
    config: AttackConfig,
    training_views: list[SplitView],
    fractions: tuple[float, ...] = DEFAULT_PA_FRACTIONS,
    seed: int = 0,
    holdout: float = 0.2,
) -> tuple[float, dict[float, float], float]:
    """Pick the PA-LoC fraction by the paper's 80/20 validation.

    Returns ``(best_fraction, per-fraction mean success, elapsed_time)``.
    """
    import time

    start = time.perf_counter()
    rng = np.random.default_rng(seed)
    masks = [rng.random(len(view)) >= holdout for view in training_views]
    trained = train_attack(config, training_views, seed=seed, allowed=masks)
    rates: dict[float, list[float]] = {f: [] for f in fractions}
    for view, mask in zip(training_views, masks):
        result = evaluate_attack(trained, view)
        held_out = np.nonzero(~mask)[0]
        for fraction in fractions:
            rates[fraction].append(
                pa_success_rate(
                    result,
                    pa_fraction=fraction,
                    targets=held_out,
                    rng=np.random.default_rng(seed + 1),
                )
            )
    mean_rates = {f: float(np.mean(r)) if r else 0.0 for f, r in rates.items()}
    best = max(mean_rates, key=lambda f: mean_rates[f])
    return best, mean_rates, time.perf_counter() - start


def run_validated_pa(
    config: AttackConfig,
    views: list[SplitView],
    test_index: int,
    fractions: tuple[float, ...] = DEFAULT_PA_FRACTIONS,
    seed: int = 0,
) -> ValidatedPA:
    """Full validation-based PA for one leave-one-out fold."""
    import time

    test_view = views[test_index]
    training_views = views[:test_index] + views[test_index + 1 :]
    best, mean_rates, validation_time = validate_pa_fraction(
        config, training_views, fractions, seed=seed
    )
    start = time.perf_counter()
    trained = train_attack(config, training_views, seed=seed)
    result = evaluate_attack(trained, test_view)
    success = pa_success_rate(
        result, pa_fraction=best, rng=np.random.default_rng(seed + 2)
    )
    return ValidatedPA(
        design_name=test_view.design_name,
        config_name=config.name,
        best_fraction=best,
        validation_rates=mean_rates,
        success_rate=success,
        validation_time=validation_time,
        attack_time=time.perf_counter() - start,
    )
