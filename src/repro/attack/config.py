"""Attack model configurations (paper Section IV).

The four primary configurations and their "Y"-suffixed variants:

* ``ML-9``  -- 9 features, no scalability neighborhood (paper's baseline);
* ``Imp-9`` -- 9 features with the Section III-D neighborhood;
* ``Imp-7`` -- neighborhood, minus the two least important features;
* ``Imp-11`` -- neighborhood, all 11 features;
* ``*Y``   -- additionally limit the v-pin coordinate difference along the
  top metal layer's off-axis to zero (highest via layer only).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..splitmfg.pair_features import FEATURE_SETS
from ..splitmfg.sampling import DEFAULT_NEIGHBORHOOD_PERCENTILE


@dataclass(frozen=True)
class AttackConfig:
    """All knobs of one machine-learning attack variant."""

    name: str
    n_features: int = 9
    scalable: bool = False
    limit_top_axis: bool = False
    neighborhood_percentile: float = DEFAULT_NEIGHBORHOOD_PERCENTILE
    n_estimators: int = 10
    base_classifier: str = "reptree"  # "reptree" | "randomtree"
    voting: str = "soft"

    def __post_init__(self) -> None:
        if self.n_features not in FEATURE_SETS:
            raise ValueError(
                f"n_features must be one of {sorted(FEATURE_SETS)}, "
                f"got {self.n_features}"
            )
        if self.base_classifier not in ("reptree", "randomtree"):
            raise ValueError(f"unknown base classifier {self.base_classifier!r}")

    @property
    def features(self) -> tuple[str, ...]:
        return FEATURE_SETS[self.n_features]

    def with_limit(self) -> "AttackConfig":
        """The "Y"-suffixed variant of this configuration."""
        if self.limit_top_axis:
            return self
        return replace(self, name=f"{self.name}Y", limit_top_axis=True)


ML_9 = AttackConfig(name="ML-9", n_features=9, scalable=False)
IMP_9 = AttackConfig(name="Imp-9", n_features=9, scalable=True)
IMP_7 = AttackConfig(name="Imp-7", n_features=7, scalable=True)
IMP_11 = AttackConfig(name="Imp-11", n_features=11, scalable=True)

ML_9Y = ML_9.with_limit()
IMP_9Y = IMP_9.with_limit()
IMP_7Y = IMP_7.with_limit()
IMP_11Y = IMP_11.with_limit()

PRIMARY_CONFIGS: tuple[AttackConfig, ...] = (ML_9, IMP_9, IMP_7, IMP_11)
LIMIT_CONFIGS: tuple[AttackConfig, ...] = (ML_9Y, IMP_9Y, IMP_7Y, IMP_11Y)
ALL_CONFIGS: tuple[AttackConfig, ...] = PRIMARY_CONFIGS + LIMIT_CONFIGS

CONFIGS_BY_NAME: dict[str, AttackConfig] = {c.name: c for c in ALL_CONFIGS}
