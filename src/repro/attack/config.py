"""Attack model configurations (paper Section IV).

The four primary configurations and their "Y"-suffixed variants:

* ``ML-9``  -- 9 features, no scalability neighborhood (paper's baseline);
* ``Imp-9`` -- 9 features with the Section III-D neighborhood;
* ``Imp-7`` -- neighborhood, minus the two least important features;
* ``Imp-11`` -- neighborhood, all 11 features;
* ``*Y``   -- additionally limit the v-pin coordinate difference along the
  top metal layer's off-axis to zero (highest via layer only).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..splitmfg.pair_features import FEATURE_SETS
from ..splitmfg.sampling import DEFAULT_NEIGHBORHOOD_PERCENTILE


def _freeze_value(value: object) -> object:
    """Recursively turn lists (from JSON round-trips) into tuples."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(item) for item in value)
    return value


def _freeze_params(
    params: object,
) -> tuple[tuple[str, object], ...]:
    """Normalize backend params to a hashable tuple of (key, value)."""
    if isinstance(params, dict):
        items = params.items()
    else:
        items = list(params or ())
    frozen = []
    for item in items:
        key, value = item
        frozen.append((str(key), _freeze_value(value)))
    return tuple(frozen)


@dataclass(frozen=True)
class AttackConfig:
    """All knobs of one machine-learning attack variant.

    ``backend`` names the classifier backend in the
    :mod:`repro.ml.backends` registry (resolved when the classifier is
    constructed, so configs stay import-light); ``backend_params`` are
    extra constructor parameters as a tuple of ``(key, value)`` pairs
    (kept hashable for the frozen dataclass, normalized from the nested
    lists a JSON round-trip produces).  For the default ``bagging``
    backend, ``n_estimators``/``base_classifier``/``voting`` keep their
    historical meaning and are forwarded automatically.
    """

    name: str
    n_features: int = 9
    scalable: bool = False
    limit_top_axis: bool = False
    neighborhood_percentile: float = DEFAULT_NEIGHBORHOOD_PERCENTILE
    n_estimators: int = 10
    base_classifier: str = "reptree"  # "reptree" | "randomtree"
    voting: str = "soft"
    backend: str = "bagging"
    backend_params: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.n_features not in FEATURE_SETS:
            raise ValueError(
                f"n_features must be one of {sorted(FEATURE_SETS)}, "
                f"got {self.n_features}"
            )
        if self.base_classifier not in ("reptree", "randomtree"):
            raise ValueError(f"unknown base classifier {self.base_classifier!r}")
        object.__setattr__(
            self, "backend_params", _freeze_params(self.backend_params)
        )

    @property
    def features(self) -> tuple[str, ...]:
        return FEATURE_SETS[self.n_features]

    def with_limit(self) -> "AttackConfig":
        """The "Y"-suffixed variant of this configuration."""
        if self.limit_top_axis:
            return self
        return replace(self, name=f"{self.name}Y", limit_top_axis=True)

    def with_backend(self, backend: str, **params: object) -> "AttackConfig":
        """This configuration re-pointed at another classifier backend.

        The name gains a ``+<backend>`` suffix (unless the backend is
        unchanged) so reports and registry entries stay distinguishable.
        """
        if backend == self.backend and not params:
            return self
        suffix = "" if backend == self.backend else f"+{backend}"
        return replace(
            self,
            name=f"{self.name}{suffix}",
            backend=backend,
            backend_params=_freeze_params(params),
        )


ML_9 = AttackConfig(name="ML-9", n_features=9, scalable=False)
IMP_9 = AttackConfig(name="Imp-9", n_features=9, scalable=True)
IMP_7 = AttackConfig(name="Imp-7", n_features=7, scalable=True)
IMP_11 = AttackConfig(name="Imp-11", n_features=11, scalable=True)

ML_9Y = ML_9.with_limit()
IMP_9Y = IMP_9.with_limit()
IMP_7Y = IMP_7.with_limit()
IMP_11Y = IMP_11.with_limit()

PRIMARY_CONFIGS: tuple[AttackConfig, ...] = (ML_9, IMP_9, IMP_7, IMP_11)
LIMIT_CONFIGS: tuple[AttackConfig, ...] = (ML_9Y, IMP_9Y, IMP_7Y, IMP_11Y)
ALL_CONFIGS: tuple[AttackConfig, ...] = PRIMARY_CONFIGS + LIMIT_CONFIGS

CONFIGS_BY_NAME: dict[str, AttackConfig] = {c.name: c for c in ALL_CONFIGS}
