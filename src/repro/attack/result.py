"""Attack result container: candidate pairs, probabilities, LoC machinery.

The classifier is run once; all LoC-size/accuracy trade-offs of Sections
III-F and IV are then pure post-processing on the recorded pair
probabilities (exactly the "without re-running the entire classification
process" workflow the paper describes).

Definitions used throughout (matching the paper):

* a v-pin's **LoC** at threshold ``t`` is the set of partners ``u`` with
  a recorded pair probability ``p(v, u) >= t``;
* **accuracy** is the fraction of v-pins whose LoC contains a true match;
* **LoC fraction** is the average LoC size divided by the number of
  v-pins in the design.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..splitmfg.split import SplitView


@dataclass
class AttackResult:
    """Pair probabilities for one (configuration, test design) run."""

    view: SplitView
    pair_i: np.ndarray
    pair_j: np.ndarray
    prob: np.ndarray
    config_name: str = ""
    train_time: float = 0.0
    test_time: float = 0.0
    n_pairs_evaluated: int = 0
    _cover_p: np.ndarray | None = field(default=None, repr=False)
    _is_match: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not (len(self.pair_i) == len(self.pair_j) == len(self.prob)):
            raise ValueError("pair arrays disagree on length")

    def is_match(self) -> np.ndarray:
        """Boolean array: whether each recorded pair is a true match."""
        if self._is_match is None:
            n = self.n_vpins
            match_keys = np.array(
                [
                    min(v.id, m) * n + max(v.id, m)
                    for v in self.view.vpins
                    for m in v.matches
                    if v.id < m
                ],
                dtype=np.int64,
            )
            lo = np.minimum(self.pair_i, self.pair_j).astype(np.int64)
            hi = np.maximum(self.pair_i, self.pair_j).astype(np.int64)
            self._is_match = np.isin(lo * n + hi, match_keys)
        return self._is_match

    @property
    def n_vpins(self) -> int:
        return len(self.view)

    @property
    def n_matched_vpins(self) -> int:
        """V-pins that actually have a hidden connection (accuracy
        denominator; differs from ``n_vpins`` only under dummy-v-pin
        defenses)."""
        return sum(1 for v in self.view.vpins if v.matches)

    @property
    def runtime(self) -> float:
        return self.train_time + self.test_time

    # ------------------------------------------------------------------
    # Core curves
    # ------------------------------------------------------------------

    def cover_probability(self) -> np.ndarray:
        """Per v-pin: highest probability among its true-match pairs.

        The v-pin's true match is inside its LoC at threshold ``t`` iff
        this value is ``>= t``; ``-inf`` when no true-match pair was even
        evaluated (the saturation effect of the Imp neighborhoods).
        """
        if self._cover_p is None:
            cover = np.full(self.n_vpins, -np.inf)
            hit = self.is_match()
            np.maximum.at(cover, self.pair_i[hit], self.prob[hit])
            np.maximum.at(cover, self.pair_j[hit], self.prob[hit])
            self._cover_p = cover
        return self._cover_p

    def accuracy_at_threshold(self, threshold: float) -> float:
        """Fraction of v-pins whose LoC (at ``threshold``) has the match."""
        if self.n_vpins == 0:
            return 0.0
        matched = self.n_matched_vpins
        if matched == 0:
            return 0.0
        cover = self.cover_probability()
        # -inf means the match was never evaluated: not covered even at
        # threshold -inf (the Imp saturation effect).
        covered = int((np.isfinite(cover) & (cover >= threshold)).sum())
        return covered / matched

    def mean_loc_size_at_threshold(self, threshold: float) -> float:
        """Average LoC size at ``threshold`` (each pair feeds both sides)."""
        if self.n_vpins == 0:
            return 0.0
        kept = int((self.prob >= threshold).sum())
        return 2.0 * kept / self.n_vpins

    def loc_fraction_at_threshold(self, threshold: float) -> float:
        return self.mean_loc_size_at_threshold(threshold) / max(self.n_vpins, 1)

    def saturation_accuracy(self) -> float:
        """Best achievable accuracy (threshold -> -inf), < 1 when the
        neighborhood excluded some true matches from testing."""
        matched = self.n_matched_vpins
        if matched == 0:
            return 0.0
        return int(np.isfinite(self.cover_probability()).sum()) / matched

    # ------------------------------------------------------------------
    # Inverse lookups (Table IV columns)
    # ------------------------------------------------------------------

    def threshold_for_accuracy(self, accuracy: float) -> float | None:
        """Smallest LoC threshold achieving at least ``accuracy``.

        ``None`` when the accuracy is unreachable (saturation), which the
        paper renders as a dash.
        """
        cover = self.cover_probability()
        finite = np.sort(cover[np.isfinite(cover)])[::-1]
        needed = int(np.ceil(accuracy * self.n_matched_vpins))
        if needed == 0:
            return float("inf")
        if needed > len(finite):
            return None
        return float(finite[needed - 1])

    def threshold_for_loc_fraction(self, fraction: float) -> float:
        """Threshold whose LoC fraction is closest to ``fraction`` from below."""
        target_pairs = fraction * self.n_vpins * self.n_vpins / 2.0
        k = int(np.floor(target_pairs))
        if k <= 0:
            return float("inf")
        if k >= len(self.prob):
            return -float("inf")
        sorted_probs = np.sort(self.prob)[::-1]
        return float(sorted_probs[k - 1])

    def loc_fraction_for_accuracy(self, accuracy: float) -> float | None:
        threshold = self.threshold_for_accuracy(accuracy)
        if threshold is None:
            return None
        return self.loc_fraction_at_threshold(threshold)

    def mean_loc_size_for_accuracy(self, accuracy: float) -> float | None:
        threshold = self.threshold_for_accuracy(accuracy)
        if threshold is None:
            return None
        return self.mean_loc_size_at_threshold(threshold)

    def accuracy_at_loc_fraction(self, fraction: float) -> float:
        return self.accuracy_at_threshold(self.threshold_for_loc_fraction(fraction))

    def accuracy_at_mean_loc_size(self, size: float) -> float:
        if self.n_vpins == 0:
            return 0.0
        return self.accuracy_at_loc_fraction(size / self.n_vpins)

    def curve(
        self, fractions: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """(LoC fraction, accuracy) trade-off series (Figs. 9/10)."""
        if fractions is None:
            fractions = np.logspace(-5, -0.5, 40)
        accuracies = np.array(
            [self.accuracy_at_loc_fraction(f) for f in fractions]
        )
        return np.asarray(fractions, dtype=float), accuracies

    # ------------------------------------------------------------------
    # Per-v-pin adjacency (for the proximity attack)
    # ------------------------------------------------------------------

    def per_vpin_candidates(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """For each v-pin, its (partner ids, pair probabilities)."""
        partners: list[list[int]] = [[] for _ in range(self.n_vpins)]
        probs: list[list[float]] = [[] for _ in range(self.n_vpins)]
        for i, j, p in zip(self.pair_i, self.pair_j, self.prob):
            partners[i].append(int(j))
            probs[i].append(float(p))
            partners[j].append(int(i))
            probs[j].append(float(p))
        return [
            (np.array(ps, dtype=int), np.array(pp))
            for ps, pp in zip(partners, probs)
        ]


@dataclass(frozen=True)
class AttackSummary:
    """Compact, memory-light summary of an :class:`AttackResult`."""

    design_name: str
    config_name: str
    split_layer: int
    n_vpins: int
    train_time: float
    test_time: float
    n_pairs_evaluated: int
    curve_fractions: tuple[float, ...]
    curve_accuracies: tuple[float, ...]
    saturation_accuracy: float
    loc_at_default_threshold: float
    accuracy_at_default_threshold: float

    @property
    def runtime(self) -> float:
        return self.train_time + self.test_time


def summarize(result: AttackResult, fractions: np.ndarray | None = None) -> AttackSummary:
    """Build the compact summary (drops the raw pair arrays)."""
    xs, ys = result.curve(fractions)
    return AttackSummary(
        design_name=result.view.design_name,
        config_name=result.config_name,
        split_layer=result.view.split_layer,
        n_vpins=result.n_vpins,
        train_time=result.train_time,
        test_time=result.test_time,
        n_pairs_evaluated=result.n_pairs_evaluated,
        curve_fractions=tuple(float(x) for x in xs),
        curve_accuracies=tuple(float(y) for y in ys),
        saturation_accuracy=result.saturation_accuracy(),
        loc_at_default_threshold=result.mean_loc_size_at_threshold(0.5),
        accuracy_at_default_threshold=result.accuracy_at_threshold(0.5),
    )
