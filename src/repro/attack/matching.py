"""Global matching attack: a scalable analogue of the network-flow attack.

The paper (Section II-B) notes that flow-based matching attacks [13] are
infeasible at industrial scale because they consider all candidate pairs
simultaneously, and that its ML framework could be *combined* with such
techniques.  This module implements that combination: the ML classifier's
pair probabilities define a sparse bipartite-ish graph, and a maximum-
weight one-to-one assignment picks a globally consistent set of
connections, instead of the proximity attack's independent per-v-pin
choices.

Because the ML stage (especially the Imp neighborhoods) already prunes
the pair set to a sparse graph, the assignment runs on thousands of
v-pins in well under a second -- exactly the scalability argument the
paper makes for ML-first pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from .result import AttackResult


@dataclass(frozen=True)
class MatchingOutcome:
    """Result of the global matching attack on one design."""

    design_name: str
    config_name: str
    n_vpins: int
    n_assigned: int
    n_correct: int

    @property
    def success_rate(self) -> float:
        """Fraction of v-pins whose assigned partner is a true match."""
        if self.n_vpins == 0:
            return 0.0
        return self.n_correct / self.n_vpins


def _greedy_assignment(
    pair_i: np.ndarray,
    pair_j: np.ndarray,
    weight: np.ndarray,
) -> dict[int, int]:
    """Greedy maximum-weight matching: scan pairs by descending weight.

    Greedy matching is a 1/2-approximation of the maximum-weight matching
    and runs in O(m log m) -- the scalable choice for the large, lower
    split layers (a v-pin graph is a general graph, not bipartite, so the
    Hungarian algorithm does not directly apply).
    """
    order = np.argsort(weight)[::-1]
    assigned: dict[int, int] = {}
    for k in order:
        a, b = int(pair_i[k]), int(pair_j[k])
        if a in assigned or b in assigned:
            continue
        assigned[a] = b
        assigned[b] = a
    return assigned


def global_matching_attack(
    result: AttackResult,
    min_probability: float = 0.5,
) -> MatchingOutcome:
    """Assign every v-pin at most one partner, maximizing total probability.

    Only pairs with probability >= ``min_probability`` participate (the
    classifier's LoC), mirroring how [13]-style attacks would consume the
    ML stage's output.
    """
    keep = result.prob >= min_probability
    assigned = _greedy_assignment(
        result.pair_i[keep], result.pair_j[keep], result.prob[keep]
    )
    n_correct = 0
    for vpin in result.view.vpins:
        partner = assigned.get(vpin.id)
        if partner is not None and partner in vpin.matches:
            n_correct += 1
    return MatchingOutcome(
        design_name=result.view.design_name,
        config_name=result.config_name,
        n_vpins=result.n_vpins,
        n_assigned=len(assigned),
        n_correct=n_correct,
    )


def distance_weighted_matching_attack(
    result: AttackResult,
    min_probability: float = 0.3,
    distance_scale: float = 0.05,
) -> MatchingOutcome:
    """Matching on probability x proximity, combining both attack signals.

    The weight of a pair is ``p * exp(-d / (distance_scale * HP))`` --
    the classifier's belief discounted by normalized Manhattan distance,
    a direct fusion of the ML attack with the classic proximity prior.
    """
    view = result.view
    keep = result.prob >= min_probability
    pair_i = result.pair_i[keep]
    pair_j = result.pair_j[keep]
    arr = view.arrays()
    distance = np.abs(arr["vx"][pair_i] - arr["vx"][pair_j]) + np.abs(
        arr["vy"][pair_i] - arr["vy"][pair_j]
    )
    weight = result.prob[keep] * np.exp(
        -distance / max(distance_scale * view.half_perimeter, 1e-9)
    )
    assigned = _greedy_assignment(pair_i, pair_j, weight)
    n_correct = 0
    for vpin in view.vpins:
        partner = assigned.get(vpin.id)
        if partner is not None and partner in vpin.matches:
            n_correct += 1
    return MatchingOutcome(
        design_name=view.design_name,
        config_name=f"{result.config_name}+match",
        n_vpins=result.n_vpins,
        n_assigned=len(assigned),
        n_correct=n_correct,
    )


def connected_component_sizes(result: AttackResult, threshold: float = 0.5) -> np.ndarray:
    """Sizes of the LoC graph's connected components.

    A diagnostic for how "entangled" the classifier's candidate graph is:
    the [13]-style flow formulations blow up on large components, which is
    the paper's infeasibility argument quantified.
    """
    keep = result.prob >= threshold
    n = result.n_vpins
    if n == 0 or not keep.any():
        return np.zeros(0, dtype=int)
    graph = sp.coo_matrix(
        (
            np.ones(int(keep.sum())),
            (result.pair_i[keep], result.pair_j[keep]),
        ),
        shape=(n, n),
    )
    n_components, labels = csgraph.connected_components(graph, directed=False)
    return np.bincount(labels, minlength=n_components)
