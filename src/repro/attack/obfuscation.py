"""Design obfuscation by v-pin coordinate noise (paper Section III-I).

The paper imitates obfuscated (perturbed) routing by adding Gaussian white
noise to the y-coordinate of every v-pin, with the standard deviation
expressed as a fraction of the layout's y-extent (1-2 % in Table VI).
Training and testing views are perturbed identically in distribution (but
with independent draws), and the routing-congestion feature is recomputed
on the perturbed positions.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..layout.geometry import Point
from ..splitmfg.split import SplitView
from ..splitmfg.vpin_features import routing_congestion


def with_y_noise(
    view: SplitView,
    sd_fraction: float,
    rng: np.random.Generator,
) -> SplitView:
    """A copy of ``view`` with noisy v-pin y-coordinates.

    ``sd_fraction`` is the noise standard deviation as a fraction of the
    die height (the paper's "SD = 1%/2% of the layout size in
    y-direction").  Positions are clamped to the die.
    """
    if sd_fraction < 0:
        raise ValueError("sd_fraction must be non-negative")
    if sd_fraction == 0:
        return view
    sd = sd_fraction * view.die_height
    noisy_vpins = []
    for vpin in view.vpins:
        noise = float(rng.normal(0.0, sd))
        new_y = min(max(vpin.location.y + noise, 0.0), view.die_height)
        noisy_vpins.append(
            replace(vpin, location=Point(vpin.location.x, new_y))
        )
    noisy = SplitView(
        design_name=view.design_name,
        split_layer=view.split_layer,
        die_width=view.die_width,
        die_height=view.die_height,
        vpins=noisy_vpins,
        num_via_layers=view.num_via_layers,
        top_metal_direction=view.top_metal_direction,
    )
    # Routing congestion is a function of v-pin positions; refresh it.
    rc = routing_congestion(noisy)
    for vpin, rc_value in zip(noisy.vpins, rc):
        vpin.rc = float(rc_value)
    noisy.invalidate_cache()
    return noisy


def obfuscate_suite(
    views: list[SplitView],
    sd_fraction: float,
    seed: int = 0,
) -> list[SplitView]:
    """Apply independent y-noise to every view of a suite."""
    rng = np.random.default_rng(seed)
    return [with_y_noise(view, sd_fraction, rng) for view in views]
