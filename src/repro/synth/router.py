"""Direction-aware global router with explicit via stacks.

The router turns each net into a set of two-pin *arcs* (Prim-style
chaining over the net's pins) and routes every arc on a pair of adjacent
metal layers chosen by arc length -- short arcs on the fine lower layers,
die-crossing arcs on the coarse top layers, mirroring how commercial
routers exploit a 4x wire-size stack.

An arc's route is geometrically explicit:

* an *ascent stack* climbs from the M1 pin to the arc's lower routing
  layer, jogging on every intermediate layer (in that layer's legal
  direction) by a congestion-scaled random amount;
* a Z-connection runs on the (lower, upper) layer pair, with the transfer
  coordinate optionally detoured by congestion;
* a *descent stack* mirrors the ascent at the far pin.

Because jogs grow with local congestion, matching v-pins drift apart in
congested regions -- the behaviour the paper identifies as what makes the
attack hard (Section II-B).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..layout.design import Route, RouteSegment, Via
from ..layout.geometry import Point, Rect, snap
from ..layout.netlist import Net, Netlist
from ..layout.technology import Direction, Technology


@dataclass(frozen=True)
class RouterConfig:
    """Knobs for the global router."""

    # Arc-length thresholds for layer-pair assignment, as fractions of the
    # die half-perimeter.  Entry i is the upper length bound for pair i
    # (the last pair takes everything longer).  Must have one entry fewer
    # than the number of layer pairs.
    pair_thresholds: tuple[float, ...] = (
        0.008,
        0.020,
        0.040,
        0.070,
        0.110,
        0.160,
        0.240,
    )
    # Probability of promoting an arc one pair higher than its length bin
    # (routers spill upward under congestion).
    promotion_probability: float = 0.15
    # Jog magnitude, in units of the jogging layer's pitch.
    jog_mean_pitches: float = 4.0
    # Sensitivity of jog/detour size to local congestion (0 disables).
    congestion_sensitivity: float = 1.0
    # Detour magnitude of the Z transfer coordinate, in upper-layer pitches.
    detour_mean_pitches: float = 2.0
    # Probability that a long upper-layer run takes a short *excursion*
    # two layers up (e.g. an M5 wire hopping onto M7 for a stretch to
    # escape congestion).  Excursions are what populate middle via layers
    # with close-together matching v-pins, exactly like commercial
    # routing does; without them every cut net would span its full arc.
    excursion_probability: float = 0.5
    # Excursion span, as a fraction range of the upper run's length.
    excursion_span: tuple[float, float] = (0.15, 0.6)
    # Track shift when rejoining the original layer after an excursion,
    # in upper-layer pitches.
    excursion_shift_pitches: float = 2.0
    congestion_grid: int = 24
    # The Z transfer coordinate snaps to this many upper-layer pitches
    # (global-routing track quantization).  Matching v-pins of a top-pair
    # arc therefore share an *exact* coordinate, and unrelated v-pins land
    # on the same track with realistic probability.
    track_quantization: float = 4.0
    seed: int = 0


class CongestionGrid:
    """Coarse routing-usage map used to scale jogs and detours."""

    def __init__(self, die: Rect, resolution: int) -> None:
        if resolution < 1:
            raise ValueError("resolution must be >= 1")
        self.die = die
        self.resolution = resolution
        self.usage = np.zeros((resolution, resolution))
        self._cell_w = die.width / resolution
        self._cell_h = die.height / resolution

    def _bin(self, p: Point) -> tuple[int, int]:
        i = int(min(max((p.x - self.die.xlo) / self._cell_w, 0), self.resolution - 1))
        j = int(min(max((p.y - self.die.ylo) / self._cell_h, 0), self.resolution - 1))
        return i, j

    def add_segment(self, a: Point, b: Point) -> None:
        """Record wirelength along the segment (endpoint binning)."""
        length = a.manhattan(b)
        for p in (a, b):
            i, j = self._bin(p)
            self.usage[i, j] += length / 2.0

    def level_at(self, p: Point) -> float:
        """Normalized congestion in [0, ~few] around ``p``."""
        mean = self.usage.mean()
        if mean <= 0:
            return 0.0
        i, j = self._bin(p)
        return float(self.usage[i, j] / mean)


def layer_pairs(technology: Technology) -> list[tuple[int, int]]:
    """Adjacent (lower, upper) metal-layer routing pairs, bottom to top."""
    return [(i, i + 1) for i in range(1, technology.num_metal_layers)]


class GlobalRouter:
    """Routes a placed netlist onto the metal stack."""

    def __init__(
        self, technology: Technology, die: Rect, config: RouterConfig
    ) -> None:
        self.technology = technology
        self.die = die
        self.config = config
        self.pairs = layer_pairs(technology)
        thresholds = config.pair_thresholds
        if len(thresholds) >= len(self.pairs):
            # Re-space thresholds for short stacks (used by small tests):
            # keep the top len(pairs) - 1 entries (none for a single pair).
            keep = len(self.pairs) - 1
            thresholds = thresholds[len(thresholds) - keep :] if keep else ()
        self._bounds = np.array(thresholds) * die.half_perimeter
        self.rng = np.random.default_rng(config.seed)
        self.congestion = CongestionGrid(die, config.congestion_grid)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def route_netlist(self, netlist: Netlist) -> dict[str, Route]:
        """Route every net; returns a route per net name."""
        routes: dict[str, Route] = {}
        order = self.rng.permutation(netlist.num_nets)
        nets = netlist.nets
        for idx in order:
            net = nets[int(idx)]
            routes[net.name] = self.route_net(netlist, net)
        return routes

    def route_net(self, netlist: Netlist, net: Net) -> Route:
        """Route one net as Prim-chained two-pin arcs."""
        points = [netlist.pin_location(ref) for ref in net.pins]
        segments: list[RouteSegment] = []
        vias: list[Via] = []
        for a, b in self._prim_arcs(points):
            arc_segments, arc_vias = self.route_arc(a, b)
            segments.extend(arc_segments)
            vias.extend(arc_vias)
        return Route(net=net.name, segments=tuple(segments), vias=tuple(vias))

    def route_arc(
        self, p: Point, q: Point
    ) -> tuple[list[RouteSegment], list[Via]]:
        """Route a two-pin arc between M1 points ``p`` and ``q``."""
        lower, upper = self._assign_pair(p.manhattan(q))
        segments: list[RouteSegment] = []
        vias: list[Via] = []
        s1 = self._stack(p, lower, segments, vias)
        s2 = self._stack(q, lower, segments, vias)
        self._z_connect(s1, s2, lower, upper, segments, vias)
        for seg in segments:
            self.congestion.add_segment(seg.a, seg.b)
        return segments, vias

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _prim_arcs(
        self, points: list[Point]
    ) -> list[tuple[Point, Point]]:
        """Chain pins into arcs, nearest-connected-pin first."""
        if len(points) < 2:
            return []
        connected = [points[0]]
        remaining = points[1:]
        arcs: list[tuple[Point, Point]] = []
        while remaining:
            best = None
            for r_idx, r in enumerate(remaining):
                for c in connected:
                    d = c.manhattan(r)
                    if best is None or d < best[0]:
                        best = (d, c, r_idx)
            assert best is not None
            _, source, r_idx = best
            sink = remaining.pop(r_idx)
            arcs.append((source, sink))
            connected.append(sink)
        return arcs

    def _assign_pair(self, length: float) -> tuple[int, int]:
        """Pick the (lower, upper) routing pair for an arc of ``length``."""
        bin_index = int(np.searchsorted(self._bounds, length))
        if (
            bin_index < len(self.pairs) - 1
            and self.rng.random() < self.config.promotion_probability
        ):
            bin_index += 1
        return self.pairs[bin_index]

    def _jog_length(self, layer: int, at: Point) -> float:
        """Signed jog length on ``layer`` around ``at`` (congestion-scaled)."""
        pitch = self.technology.metal(layer).pitch
        level = self.congestion.level_at(at)
        scale = self.config.jog_mean_pitches * pitch
        scale *= 1.0 + self.config.congestion_sensitivity * level
        magnitude = self.rng.exponential(scale)
        sign = 1.0 if self.rng.random() < 0.5 else -1.0
        return sign * magnitude

    def _clamp_coord(self, value: float, lo: float, hi: float) -> float:
        return min(max(value, lo), hi)

    def _stack(
        self,
        pin: Point,
        top: int,
        segments: list[RouteSegment],
        vias: list[Via],
    ) -> Point:
        """Build the via stack from an M1 ``pin`` up to metal ``top``.

        Each intermediate layer contributes a direction-legal jog whose
        end carries the via to the next layer; returns the stack's landing
        point on metal ``top``.
        """
        current = pin
        for layer in range(1, top):
            jog = self._jog_length(layer, current)
            if abs(jog) > 1e-12:
                pitch = self.technology.metal(layer).pitch
                if self.technology.direction(layer) is Direction.HORIZONTAL:
                    x = self._clamp_coord(
                        snap(current.x + jog, pitch), self.die.xlo, self.die.xhi
                    )
                    nxt = Point(x, current.y)
                else:
                    y = self._clamp_coord(
                        snap(current.y + jog, pitch), self.die.ylo, self.die.yhi
                    )
                    nxt = Point(current.x, y)
                if nxt != current:
                    segments.append(RouteSegment(layer, current, nxt))
                current = nxt
            vias.append(Via(layer, current))
        return current

    def _z_connect(
        self,
        s1: Point,
        s2: Point,
        lower: int,
        upper: int,
        segments: list[RouteSegment],
        vias: list[Via],
    ) -> None:
        """Connect two points on metal ``lower`` through metal ``upper``.

        The upper-layer wire runs in its preferred direction at a transfer
        coordinate near ``s2`` (plus a congestion-scaled detour), which is
        what makes matching v-pins of top-pair arcs share one coordinate.
        """
        upper_dir = self.technology.direction(upper)
        pitch = self.technology.metal(upper).pitch
        track = pitch * self.config.track_quantization
        level = self.congestion.level_at(s2)
        detour_scale = self.config.detour_mean_pitches * pitch
        detour_scale *= 1.0 + self.config.congestion_sensitivity * level
        detour = self.rng.exponential(detour_scale) * (
            1.0 if self.rng.random() < 0.5 else -1.0
        )
        if upper_dir is Direction.HORIZONTAL:
            # lower runs vertically; upper wire on the track at y = transfer.
            transfer = self._clamp_coord(
                snap(s2.y + detour, track), self.die.ylo, self.die.yhi
            )
            up_start = Point(s1.x, transfer)
            if up_start != s1:
                segments.append(RouteSegment(lower, s1, up_start))
            vias.append(Via(lower, up_start))
            up_end = self._run_upper(upper, up_start, s2.x, segments, vias)
            vias.append(Via(lower, up_end))
            if up_end != s2:
                segments.append(RouteSegment(lower, up_end, s2))
        else:
            transfer = self._clamp_coord(
                snap(s2.x + detour, track), self.die.xlo, self.die.xhi
            )
            up_start = Point(transfer, s1.y)
            if up_start != s1:
                segments.append(RouteSegment(lower, s1, up_start))
            vias.append(Via(lower, up_start))
            up_end = self._run_upper(upper, up_start, s2.y, segments, vias)
            vias.append(Via(lower, up_end))
            if up_end != s2:
                segments.append(RouteSegment(lower, up_end, s2))

    def _run_upper(
        self,
        upper: int,
        start: Point,
        target: float,
        segments: list[RouteSegment],
        vias: list[Via],
    ) -> Point:
        """Route along ``upper`` from ``start`` to the ``target`` coordinate.

        With some probability a middle stretch takes an *excursion* two
        layers up (same routing direction), descending back afterwards on
        a nearby track.  Returns the final point reached (its coordinate
        along the run is ``target``; the cross coordinate may have
        shifted by the excursion rejoin).
        """
        horizontal = self.technology.direction(upper) is Direction.HORIZONTAL
        along0 = start.x if horizontal else start.y
        cross0 = start.y if horizontal else start.x

        def point(along: float, cross: float) -> Point:
            return Point(along, cross) if horizontal else Point(cross, along)

        excursion = self._plan_excursion(upper, along0, target, cross0)
        if excursion is None:
            end = point(target, cross0)
            if end != start:
                segments.append(RouteSegment(upper, start, end))
            return end
        e1, e2, exc_cross, rejoin_cross = excursion
        exc_layer = upper + 2
        jog_layer = upper + 1
        p_e1 = point(e1, cross0)
        if p_e1 != start:
            segments.append(RouteSegment(upper, start, p_e1))
        vias.append(Via(upper, p_e1))
        p_up1 = point(e1, exc_cross)
        if p_up1 != p_e1:
            segments.append(RouteSegment(jog_layer, p_e1, p_up1))
        vias.append(Via(jog_layer, p_up1))
        p_up2 = point(e2, exc_cross)
        if p_up2 != p_up1:
            segments.append(RouteSegment(exc_layer, p_up1, p_up2))
        vias.append(Via(jog_layer, p_up2))
        p_e2 = point(e2, rejoin_cross)
        if p_e2 != p_up2:
            segments.append(RouteSegment(jog_layer, p_up2, p_e2))
        vias.append(Via(upper, p_e2))
        end = point(target, rejoin_cross)
        if end != p_e2:
            segments.append(RouteSegment(upper, p_e2, end))
        return end

    def _plan_excursion(
        self,
        upper: int,
        along0: float,
        target: float,
        cross0: float,
    ) -> tuple[float, float, float, float] | None:
        """Pick the excursion interval and cross coordinates, or None."""
        exc_layer = upper + 2
        if exc_layer > self.technology.num_metal_layers:
            return None
        if self.rng.random() >= self.config.excursion_probability:
            return None
        length = abs(target - along0)
        jog_pitch = self.technology.metal(upper + 1).pitch
        if length < 8.0 * jog_pitch:
            return None
        lo_frac, hi_frac = self.config.excursion_span
        span = length * self.rng.uniform(lo_frac, hi_frac)
        offset = self.rng.uniform(0.0, length - span)
        sign = 1.0 if target >= along0 else -1.0
        lo, hi = min(along0, target), max(along0, target)
        e1 = self._clamp_coord(snap(along0 + sign * offset, jog_pitch), lo, hi)
        e2 = self._clamp_coord(snap(e1 + sign * span, jog_pitch), lo, hi)
        if e1 == e2:
            return None
        # Cross coordinate of the excursion wire, on the excursion layer's
        # (coarse) track grid.
        exc_track = (
            self.technology.metal(exc_layer).pitch * self.config.track_quantization
        )
        jog = self.rng.exponential(2.0 * jog_pitch) * (
            1.0 if self.rng.random() < 0.5 else -1.0
        )
        exc_cross = self._clamp_cross(upper, snap(cross0 + jog, exc_track))
        # Rejoin on a nearby track of the original layer.
        shift = self.rng.exponential(
            self.config.excursion_shift_pitches * self.technology.metal(upper).pitch
        ) * (1.0 if self.rng.random() < 0.5 else -1.0)
        upper_track = (
            self.technology.metal(upper).pitch * self.config.track_quantization
        )
        rejoin_cross = self._clamp_cross(upper, snap(cross0 + shift, upper_track))
        return e1, e2, exc_cross, rejoin_cross

    def _clamp_cross(self, upper: int, value: float) -> float:
        """Clamp a cross coordinate of layer ``upper`` to the die."""
        if self.technology.direction(upper) is Direction.HORIZONTAL:
            return self._clamp_coord(value, self.die.ylo, self.die.yhi)
        return self._clamp_coord(value, self.die.xlo, self.die.xhi)
