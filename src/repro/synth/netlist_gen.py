"""Placement-aware netlist synthesis.

Connectivity is generated *after* placement so that net lengths can be
drawn from a controlled, heavy-tailed distribution: most connections are
local (routed on low metal), while a small fraction spans a large part of
the die (routed on the upper, coarse layers).  Those long nets are exactly
the ones a high split layer cuts, so the tail shape controls the v-pin
population the attack sees.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.spatial import cKDTree

from ..layout.cells import PinDirection
from ..layout.geometry import Point, Rect
from ..layout.netlist import Net, Netlist, PinRef


@dataclass(frozen=True)
class NetlistConfig:
    """Knobs for connectivity generation.

    ``length_mixture`` is a tuple of ``(probability, mean_fraction)`` rows;
    a net's target length is drawn from the exponential of the selected
    component, with the mean expressed as a fraction of the die
    half-perimeter.  The default mixture yields ~70 % short local nets and
    a few-percent tail of die-crossing nets.
    """

    drive_probability: float = 0.85
    mean_fanout: float = 2.0
    max_fanout: int = 6
    length_mixture: tuple[tuple[float, float], ...] = (
        (0.60, 0.015),
        (0.25, 0.05),
        (0.11, 0.12),
        (0.04, 0.30),
    )
    seed: int = 0

    def __post_init__(self) -> None:
        total = sum(p for p, _ in self.length_mixture)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"length mixture probabilities sum to {total}, not 1")
        if not 0 < self.drive_probability <= 1:
            raise ValueError("drive_probability must be in (0, 1]")


@dataclass
class _PinPool:
    """Free input pins of all placed cells, with spatial lookup."""

    refs: list[PinRef] = field(default_factory=list)
    points: list[Point] = field(default_factory=list)
    used: set[int] = field(default_factory=set)
    tree: cKDTree | None = None

    def build(self, netlist: Netlist) -> None:
        for ci, cell in enumerate(netlist.cells):
            for pin in cell.master.pins:
                if pin.direction is PinDirection.INPUT:
                    self.refs.append(PinRef(ci, pin.name))
                    self.points.append(cell.pin_location(pin.name))
        coords = np.array([(p.x, p.y) for p in self.points])
        self.tree = cKDTree(coords)

    def claim_near(self, target: Point, exclude_cell: int, k: int = 16) -> PinRef | None:
        """Claim the nearest free input pin to ``target`` (may fail)."""
        assert self.tree is not None
        n = len(self.refs)
        k = min(k, n)
        _, indices = self.tree.query([target.x, target.y], k=k)
        indices = np.atleast_1d(indices)
        for idx in indices:
            idx = int(idx)
            if idx in self.used:
                continue
            if self.refs[idx].cell == exclude_cell:
                continue
            self.used.add(idx)
            return self.refs[idx]
        return None


def _sample_length(
    config: NetlistConfig, half_perimeter: float, rng: np.random.Generator
) -> float:
    probs = np.array([p for p, _ in config.length_mixture])
    means = np.array([m for _, m in config.length_mixture])
    component = rng.choice(len(probs), p=probs)
    return float(rng.exponential(means[component] * half_perimeter))


def generate_nets(
    netlist: Netlist, die: Rect, config: NetlistConfig
) -> None:
    """Populate ``netlist.nets`` in place.

    For each driving output pin a fanout count and a target net length are
    sampled; each sink is resolved to the nearest *free* input pin around a
    point at the target distance from the driver, so the realized net
    length distribution tracks the configured mixture.
    """
    rng = np.random.default_rng(config.seed)
    pool = _PinPool()
    pool.build(netlist)
    half_perimeter = die.half_perimeter

    cell_order = rng.permutation(netlist.num_cells)
    net_index = 0
    for ci in cell_order:
        cell = netlist.cells[int(ci)]
        for pin in cell.master.output_pins:
            if rng.random() > config.drive_probability:
                continue
            fanout = 1 + min(
                rng.geometric(1.0 / config.mean_fanout) - 1, config.max_fanout - 1
            )
            driver_ref = PinRef(int(ci), pin.name)
            driver_at = netlist.pin_location(driver_ref)
            sinks: list[PinRef] = []
            for _ in range(fanout):
                radius = _sample_length(config, half_perimeter, rng)
                angle = rng.uniform(0.0, 2.0 * np.pi)
                target = die.clamp(
                    Point(
                        driver_at.x + radius * np.cos(angle),
                        driver_at.y + radius * np.sin(angle),
                    )
                )
                sink = pool.claim_near(target, exclude_cell=int(ci))
                if sink is not None:
                    sinks.append(sink)
            if sinks:
                netlist.add_net(
                    Net(name=f"n{net_index}", driver=driver_ref, sinks=tuple(sinks))
                )
                net_index += 1
