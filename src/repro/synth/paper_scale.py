"""Direct v-pin synthesis at paper scale (Section V design sizes).

The bookshelf pipeline (:mod:`repro.synth.benchmarks`) builds a full
placed-and-routed design before splitting it, which is the right
fidelity for the accuracy experiments but far too slow to exercise the
featurization path at the paper's largest sizes (~1M cells).  This
module synthesizes the *split view itself*: v-pins with the statistics
the paper reports -- density per cell falling steeply with the split
layer (Table I: most nets route low, few cross via8) -- and exact
ground-truth matches, without ever materializing a netlist.

That is all the scoring path consumes (``view.arrays()`` columns plus
``matches``), so a 1M-cell-class run measures exactly what the paper's
Fig. 4/5 runs measure: candidate enumeration, featurization, and
classification at scale.

Geometry: each broken net contributes one driver-side v-pin
(``out_area > 0``) and one load-side partner placed an
exponentially-distributed Manhattan offset away (most fragments are
short; a heavy tail crosses the die), so true matches are always legal
pairs and roughly a quarter of random pairs are illegal -- the same
shape the bookshelf splitter produces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..layout.geometry import Point
from ..splitmfg.split import SplitView, VPin

# Fraction of cells whose net crosses the split layer, by via layer.
# Follows the paper's Table I trend: v-pin count drops ~6x from via4
# to via6 and again to via8.
VPIN_DENSITY_PER_CELL = {4: 0.215, 6: 0.036, 8: 0.008}


@dataclass(frozen=True)
class PaperScaleConfig:
    """One paper-scale synthesis run (1M-cell class by default)."""

    name: str = "paper-scale"
    n_cells: int = 1_000_000
    split_layer: int = 8
    seed: int = 0
    cell_area_um2: float = 2.0
    utilization: float = 0.7

    def __post_init__(self) -> None:
        if self.n_cells < 2:
            raise ValueError(f"n_cells must be >= 2, got {self.n_cells}")
        if self.split_layer not in VPIN_DENSITY_PER_CELL:
            raise ValueError(
                f"split_layer must be one of "
                f"{sorted(VPIN_DENSITY_PER_CELL)}, got {self.split_layer}"
            )

    @property
    def die_side_um(self) -> float:
        area = self.n_cells * self.cell_area_um2 / self.utilization
        return float(np.sqrt(area))


def n_vpins(config: PaperScaleConfig) -> int:
    """V-pin count for ``config`` (always even: one driver per load)."""
    count = int(round(config.n_cells * VPIN_DENSITY_PER_CELL[config.split_layer]))
    count = max(2, count)
    return count - (count % 2)


def build_paper_scale_view(config: PaperScaleConfig) -> SplitView:
    """Synthesize the split view for ``config`` with known matches."""
    rng = np.random.default_rng(config.seed)
    n = n_vpins(config)
    m = n // 2
    side = config.die_side_um
    half_perimeter = 2.0 * side

    # Driver-side pin locations: uniform over the die.
    dx = rng.uniform(0.0, side, m)
    dy = rng.uniform(0.0, side, m)
    # Load partner: exponential Manhattan offset (~3% of half-perimeter
    # scale), random split between the axes, reflected into the die.
    offset = rng.exponential(0.03 * half_perimeter, m)
    frac = rng.uniform(0.0, 1.0, m)
    sign_x = rng.choice((-1.0, 1.0), m)
    sign_y = rng.choice((-1.0, 1.0), m)
    lx = np.abs(dx + sign_x * offset * frac)
    ly = np.abs(dy + sign_y * offset * (1.0 - frac))
    lx = side - np.abs(side - lx)
    ly = side - np.abs(side - ly)

    vx = np.concatenate([dx, lx])
    vy = np.concatenate([dy, ly])
    # Cell pins sit near their v-pin; fragment wirelength follows the
    # pin offset plus an exponential tail of local routing.
    px = np.clip(vx + rng.normal(0.0, 4.0, n), 0.0, side)
    py = np.clip(vy + rng.normal(0.0, 4.0, n), 0.0, side)
    w = np.abs(px - vx) + np.abs(py - vy) + rng.exponential(12.0, n)

    area = rng.gamma(2.0, config.cell_area_um2, n)
    out_area = np.where(np.arange(n) < m, area, 0.0)
    in_area = np.where(np.arange(n) < m, 0.0, area)
    pc = rng.uniform(0.05, 0.95, n)
    rc = rng.uniform(0.05, 0.95, n)

    # Shuffle ids so driver/load sides interleave like a real netlist
    # order would; remap matches through the inverse permutation.
    perm = rng.permutation(n)
    inverse = np.empty(n, dtype=np.int64)
    inverse[perm] = np.arange(n)

    vpins: list[VPin] = []
    for new_id in range(n):
        t = int(perm[new_id])
        partner_old = t + m if t < m else t - m
        vpins.append(
            VPin(
                id=new_id,
                net=f"n{t % m}",
                location=Point(float(vx[t]), float(vy[t])),
                fragment_wirelength=float(w[t]),
                pins=(),
                pin_location=Point(float(px[t]), float(py[t])),
                in_area=float(in_area[t]),
                out_area=float(out_area[t]),
                pc=float(pc[t]),
                rc=float(rc[t]),
                matches=frozenset({int(inverse[partner_old])}),
            )
        )
    return SplitView(
        design_name=f"{config.name}-{config.n_cells}c",
        split_layer=config.split_layer,
        die_width=side,
        die_height=side,
        vpins=vpins,
        num_via_layers=10,
    )
