"""Synthetic benchmark generation: placement, netlist synthesis, routing."""

from .bookshelf import read_bookshelf, write_bookshelf
from .variants import BusConfig, add_buses, build_bus_benchmark
from .benchmarks import (
    BENCHMARK_SPECS,
    BenchmarkSpec,
    build_benchmark,
    build_suite,
    scaled_spec,
    spec_by_name,
)
from .netlist_gen import NetlistConfig, generate_nets
from .paper_scale import (
    VPIN_DENSITY_PER_CELL,
    PaperScaleConfig,
    build_paper_scale_view,
    n_vpins,
)
from .placement import PlacementConfig, generate_placement
from .router import CongestionGrid, GlobalRouter, RouterConfig, layer_pairs

__all__ = [
    "BENCHMARK_SPECS",
    "BenchmarkSpec",
    "BusConfig",
    "CongestionGrid",
    "GlobalRouter",
    "NetlistConfig",
    "PaperScaleConfig",
    "PlacementConfig",
    "RouterConfig",
    "VPIN_DENSITY_PER_CELL",
    "add_buses",
    "build_benchmark",
    "build_bus_benchmark",
    "build_paper_scale_view",
    "build_suite",
    "generate_nets",
    "generate_placement",
    "layer_pairs",
    "n_vpins",
    "read_bookshelf",
    "scaled_spec",
    "spec_by_name",
    "write_bookshelf",
]
