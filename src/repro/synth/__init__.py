"""Synthetic benchmark generation: placement, netlist synthesis, routing."""

from .bookshelf import read_bookshelf, write_bookshelf
from .variants import BusConfig, add_buses, build_bus_benchmark
from .benchmarks import (
    BENCHMARK_SPECS,
    BenchmarkSpec,
    build_benchmark,
    build_suite,
    scaled_spec,
    spec_by_name,
)
from .netlist_gen import NetlistConfig, generate_nets
from .placement import PlacementConfig, generate_placement
from .router import CongestionGrid, GlobalRouter, RouterConfig, layer_pairs

__all__ = [
    "BENCHMARK_SPECS",
    "BenchmarkSpec",
    "BusConfig",
    "CongestionGrid",
    "GlobalRouter",
    "NetlistConfig",
    "PlacementConfig",
    "RouterConfig",
    "add_buses",
    "build_benchmark",
    "build_bus_benchmark",
    "build_suite",
    "generate_nets",
    "generate_placement",
    "layer_pairs",
    "read_bookshelf",
    "scaled_spec",
    "spec_by_name",
    "write_bookshelf",
]
