"""Row-based placement generator.

Produces a placed sea of standard cells (plus optional macros) sized from a
target utilization, mimicking the row structure of the ISPD-2011 layouts.
The netlist generator then builds locality-aware connectivity on top of the
placement, which is what gives arc lengths their realistic heavy tail.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..layout.cells import CellLibrary, CellMaster
from ..layout.geometry import Point, Rect
from ..layout.netlist import CellInstance, Netlist


@dataclass(frozen=True)
class PlacementConfig:
    """Knobs for the placement generator."""

    n_cells: int
    aspect_ratio: float = 1.0  # die width / height
    utilization: float = 0.7
    n_macros: int = 2
    row_height: float = 8.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_cells < 1:
            raise ValueError("n_cells must be positive")
        if not 0.05 < self.utilization <= 0.95:
            raise ValueError("utilization must be in (0.05, 0.95]")
        if self.aspect_ratio <= 0:
            raise ValueError("aspect_ratio must be positive")


def _pick_masters(
    library: CellLibrary, n_cells: int, rng: np.random.Generator
) -> list[CellMaster]:
    """Sample standard-cell masters, biased toward small drive strengths."""
    masters = library.standard_cells
    strengths = np.array([m.drive_strength for m in masters])
    # Real libraries are dominated by X1/X2 cells; weight ~ 1/strength.
    weights = 1.0 / strengths
    weights /= weights.sum()
    indices = rng.choice(len(masters), size=n_cells, p=weights)
    return [masters[i] for i in indices]


def _die_for(
    masters: list[CellMaster],
    macros: list[CellMaster],
    config: PlacementConfig,
) -> Rect:
    total_area = sum(m.area for m in masters) + sum(m.area for m in macros)
    die_area = total_area / config.utilization
    height = (die_area / config.aspect_ratio) ** 0.5
    # Round height to whole rows.
    n_rows = max(2, round(height / config.row_height))
    height = n_rows * config.row_height
    width = die_area / height
    return Rect(0.0, 0.0, width, height)


def generate_placement(
    library: CellLibrary, config: PlacementConfig
) -> tuple[Netlist, Rect]:
    """Generate a placed (but unconnected) netlist and its die outline.

    Cells fill rows left-to-right with random gaps so that the overall
    utilization matches ``config.utilization``; macros, if any, are placed
    against the die corners first and their rows are skipped.
    """
    rng = np.random.default_rng(config.seed)
    masters = _pick_masters(library, config.n_cells, rng)
    macro_masters = list(library.macros[: config.n_macros])
    die = _die_for(masters, macro_masters, config)

    netlist = Netlist(name="placed", library=library)

    macro_outlines: list[Rect] = []
    corners = [
        Point(die.xlo, die.ylo),
        Point(die.xhi, die.ylo),
        Point(die.xlo, die.yhi),
        Point(die.xhi, die.yhi),
    ]
    for i, master in enumerate(macro_masters):
        corner = corners[i % len(corners)]
        x = corner.x if corner.x == die.xlo else corner.x - master.width
        y = corner.y if corner.y == die.ylo else corner.y - master.height
        cell = CellInstance(name=f"macro{i}", master=master, location=Point(x, y))
        netlist.add_cell(cell)
        macro_outlines.append(cell.outline)

    n_rows = round(die.height / config.row_height)
    # Shuffle cells across rows to decorrelate master type and position.
    order = rng.permutation(len(masters))
    per_row = int(np.ceil(len(masters) / n_rows))
    idx = 0
    for row in range(n_rows):
        y = die.ylo + row * config.row_height
        x = die.xlo
        row_cells = order[idx : idx + per_row]
        idx += per_row
        for j in row_cells:
            master = masters[j]
            # Random gap keeps average utilization at the target.
            gap = rng.exponential(master.width * (1.0 / config.utilization - 1.0))
            x += gap
            if x + master.width > die.xhi:
                break
            candidate = Rect(x, y, x + master.width, y + config.row_height)
            if any(candidate.intersects(m) for m in macro_outlines):
                x = _skip_past_macros(x, candidate, macro_outlines)
                if x + master.width > die.xhi:
                    break
                candidate = Rect(x, y, x + master.width, y + config.row_height)
            netlist.add_cell(
                CellInstance(name=f"u{j}", master=master, location=Point(x, y))
            )
            x += master.width
    return netlist, die


def _skip_past_macros(x: float, candidate: Rect, macros: list[Rect]) -> float:
    """Advance ``x`` beyond any macro overlapping ``candidate``'s row span."""
    for m in macros:
        if candidate.intersects(m):
            x = max(x, m.xhi + 1e-6)
    return x
