"""Benchmark variants beyond the superblue-like suite.

The paper's closing discussion notes that "regular and repeated patterns
... may be assumed to have similar logic function (e.g. data bus
connections)", giving attackers extra leverage.  This module generates a
*bus-heavy* variant: groups of parallel long nets with aligned endpoints
(a datapath crossing the die), mixed into the usual random-logic sea.
The bus share is a knob, so experiments can measure how regularity
shifts the attack's success -- the repository's take on that discussion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..layout.cells import PinDirection, make_standard_library
from ..layout.design import Design
from ..layout.geometry import Point
from ..layout.netlist import Net, Netlist, PinRef
from ..layout.technology import Technology, make_default_technology
from .benchmarks import BenchmarkSpec, spec_by_name
from .netlist_gen import generate_nets
from .placement import PlacementConfig, generate_placement
from .router import GlobalRouter


@dataclass(frozen=True)
class BusConfig:
    """Knobs for datapath-style bus injection."""

    n_buses: int = 4
    bus_width: int = 8  # bits per bus
    # Bus span as a fraction of the die width (long, so buses route on
    # the upper layers and get cut by high splits).
    span_fraction: float = 0.6
    seed: int = 0


def _free_pin(
    netlist: Netlist,
    used: set[tuple[int, str]],
    near: Point,
    direction: PinDirection,
    rng: np.random.Generator,
) -> PinRef | None:
    """The closest unused pin of ``direction`` to ``near`` (scan-based)."""
    best: tuple[float, PinRef] | None = None
    for ci, cell in enumerate(netlist.cells):
        if cell.master.is_macro or cell.location is None:
            continue
        for pin in cell.master.pins:
            if pin.direction is not direction:
                continue
            key = (ci, pin.name)
            if key in used:
                continue
            d = cell.pin_location(pin.name).manhattan(near)
            if best is None or d < best[0]:
                best = (d, PinRef(ci, pin.name))
    return best[1] if best else None


def add_buses(
    netlist: Netlist,
    die,
    config: BusConfig,
) -> list[str]:
    """Inject bus nets into a connected netlist (in place).

    Each bus is ``bus_width`` parallel two-pin nets: drivers stacked in
    consecutive rows on one side, sinks on the far side, giving the
    aligned, repeated structure of a datapath.  Returns the new net
    names.
    """
    rng = np.random.default_rng(config.seed)
    used: set[tuple[int, str]] = set()
    for net in netlist.nets:
        used.add((net.driver.cell, net.driver.pin))
        for sink in net.sinks:
            used.add((sink.cell, sink.pin))
    names: list[str] = []
    row_height = 8.0
    for bus in range(config.n_buses):
        x0 = die.xlo + rng.uniform(0.05, 0.25) * die.width
        x1 = x0 + config.span_fraction * die.width
        y0 = die.ylo + rng.uniform(0.1, 0.8) * die.height
        for bit in range(config.bus_width):
            y = min(y0 + bit * row_height, die.yhi)
            driver = _free_pin(
                netlist, used, Point(x0, y), PinDirection.OUTPUT, rng
            )
            sink = _free_pin(netlist, used, Point(x1, y), PinDirection.INPUT, rng)
            if driver is None or sink is None:
                continue
            used.add((driver.cell, driver.pin))
            used.add((sink.cell, sink.pin))
            name = f"bus{bus}_bit{bit}"
            netlist.add_net(Net(name, driver, (sink,)))
            names.append(name)
    return names


def build_bus_benchmark(
    base: str | BenchmarkSpec = "sb1",
    scale: float = 1.0,
    bus_config: BusConfig | None = None,
    technology: Technology | None = None,
) -> tuple[Design, list[str]]:
    """A superblue-like design with injected datapath buses.

    Returns ``(design, bus_net_names)`` so experiments can track the
    regular nets separately.
    """
    spec = base if isinstance(base, BenchmarkSpec) else spec_by_name(base)
    technology = technology or make_default_technology()
    library = make_standard_library()
    n_cells = max(50, int(round(spec.n_cells * scale)))
    netlist, die = generate_placement(
        library,
        PlacementConfig(
            n_cells=n_cells,
            aspect_ratio=spec.aspect_ratio,
            utilization=spec.utilization,
            n_macros=spec.n_macros,
            seed=spec.seed,
        ),
    )
    netlist.name = f"{spec.name}-bus"
    generate_nets(netlist, die, spec.netlist)
    bus_names = add_buses(netlist, die, bus_config or BusConfig())
    router = GlobalRouter(technology, die, spec.router)
    routes = router.route_netlist(netlist)
    design = Design(
        name=f"{spec.name}-bus",
        technology=technology,
        netlist=netlist,
        die=die,
        routes=routes,
    )
    return design, bus_names
