"""Benchmark suite: five "superblue-like" synthetic designs.

The paper evaluates on ISPD-2011 ``superblue{1,5,10,12,18}`` layouts.  The
specs below are scaled-down stand-ins whose *relative* properties follow
what the paper reports:

* ``sb12`` is the largest and most congested (it has the largest LoC and
  the most v-pins in every layer of Table I);
* ``sb10`` routes cleanly (small jogs/detours), giving it the atypical
  v-pin distribution the paper repeatedly singles out (best PA success at
  layer 8, two-level pruning outlier);
* ``sb18`` is the smallest.

Designs are fully deterministic given ``(spec, scale)``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..layout.cells import make_standard_library
from ..layout.design import Design
from ..layout.technology import Technology, make_default_technology
from .netlist_gen import NetlistConfig, generate_nets
from .placement import PlacementConfig, generate_placement
from .router import GlobalRouter, RouterConfig


@dataclass(frozen=True)
class BenchmarkSpec:
    """All knobs defining one synthetic benchmark."""

    name: str
    n_cells: int
    aspect_ratio: float
    utilization: float
    seed: int
    netlist: NetlistConfig
    router: RouterConfig
    n_macros: int = 2


_DEFAULT_MIXTURE = (
    (0.60, 0.015),
    (0.25, 0.05),
    (0.11, 0.12),
    (0.04, 0.30),
)

# A heavier tail: more die-crossing nets, hence more v-pins everywhere.
_LONG_MIXTURE = (
    (0.52, 0.015),
    (0.26, 0.05),
    (0.14, 0.14),
    (0.08, 0.32),
)


BENCHMARK_SPECS: tuple[BenchmarkSpec, ...] = (
    BenchmarkSpec(
        name="sb1",
        n_cells=2000,
        aspect_ratio=1.0,
        utilization=0.70,
        seed=101,
        netlist=NetlistConfig(mean_fanout=2.0, length_mixture=_DEFAULT_MIXTURE, seed=11),
        router=RouterConfig(congestion_sensitivity=1.0, seed=21),
    ),
    BenchmarkSpec(
        name="sb5",
        n_cells=2600,
        aspect_ratio=1.3,
        utilization=0.72,
        seed=105,
        netlist=NetlistConfig(mean_fanout=2.2, length_mixture=_DEFAULT_MIXTURE, seed=15),
        router=RouterConfig(congestion_sensitivity=1.2, seed=25),
    ),
    BenchmarkSpec(
        name="sb10",
        n_cells=3200,
        aspect_ratio=0.8,
        utilization=0.65,
        seed=110,
        netlist=NetlistConfig(mean_fanout=1.8, length_mixture=_DEFAULT_MIXTURE, seed=20),
        # Clean routing: tiny jogs and detours make matching v-pins sit
        # almost exactly on top of their pins -- the paper's outlier.
        router=RouterConfig(
            jog_mean_pitches=1.0,
            detour_mean_pitches=0.5,
            congestion_sensitivity=0.3,
            seed=30,
        ),
    ),
    BenchmarkSpec(
        name="sb12",
        n_cells=4000,
        aspect_ratio=1.0,
        utilization=0.80,
        seed=112,
        netlist=NetlistConfig(mean_fanout=2.4, length_mixture=_LONG_MIXTURE, seed=22),
        # Heavily congested: large jogs and detours spread matching v-pins.
        router=RouterConfig(
            jog_mean_pitches=7.0,
            detour_mean_pitches=4.0,
            congestion_sensitivity=2.0,
            seed=32,
        ),
    ),
    BenchmarkSpec(
        name="sb18",
        n_cells=1800,
        aspect_ratio=1.1,
        utilization=0.68,
        seed=118,
        netlist=NetlistConfig(mean_fanout=2.0, length_mixture=_DEFAULT_MIXTURE, seed=28),
        router=RouterConfig(congestion_sensitivity=1.4, seed=38),
    ),
)


def spec_by_name(name: str) -> BenchmarkSpec:
    """Look up one of the suite specs by benchmark name."""
    for spec in BENCHMARK_SPECS:
        if spec.name == name:
            return spec
    raise KeyError(f"unknown benchmark {name!r}")


def build_benchmark(
    spec: BenchmarkSpec,
    scale: float = 1.0,
    technology: Technology | None = None,
) -> Design:
    """Generate, place, connect, and route one benchmark.

    ``scale`` multiplies the cell count (and thereby v-pin counts), letting
    tests and CI benches run the full pipeline at a fraction of the default
    size without changing any distributional property.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    technology = technology or make_default_technology()
    library = make_standard_library()
    n_cells = max(50, int(round(spec.n_cells * scale)))
    placement_config = PlacementConfig(
        n_cells=n_cells,
        aspect_ratio=spec.aspect_ratio,
        utilization=spec.utilization,
        n_macros=spec.n_macros,
        seed=spec.seed,
    )
    netlist, die = generate_placement(library, placement_config)
    netlist.name = spec.name
    generate_nets(netlist, die, spec.netlist)
    router = GlobalRouter(technology, die, spec.router)
    routes = router.route_netlist(netlist)
    return Design(
        name=spec.name,
        technology=technology,
        netlist=netlist,
        die=die,
        routes=routes,
    )


def build_suite(
    scale: float = 1.0,
    names: tuple[str, ...] | None = None,
    technology: Technology | None = None,
) -> list[Design]:
    """Build the full five-design suite (or a named subset)."""
    specs = BENCHMARK_SPECS
    if names is not None:
        specs = tuple(spec_by_name(n) for n in names)
    return [build_benchmark(spec, scale=scale, technology=technology) for spec in specs]


def scaled_spec(spec: BenchmarkSpec, n_cells: int) -> BenchmarkSpec:
    """A copy of ``spec`` with an explicit cell count (test helper)."""
    return replace(spec, n_cells=n_cells)
