"""Bookshelf-format export/import for placed netlists.

The paper's benchmarks (ISPD-2011 superblue) are distributed in the
Bookshelf placement format -- ``.nodes`` (cells), ``.nets`` (pins),
``.pl`` (placement), tied together by an ``.aux`` file.  This module
writes and reads that subset, so generated designs interoperate with
standard placement/routing tooling and real Bookshelf netlists can be
pulled into the pipeline (routes are then produced by
:class:`repro.synth.router.GlobalRouter`).

Only the placement-relevant subset is implemented: node dimensions,
terminal (macro) flags, net pin offsets, and locations.
"""

from __future__ import annotations

from pathlib import Path

from ..layout.cells import (
    CellLibrary,
    CellMaster,
    PinDirection,
    PinSpec,
)
from ..layout.geometry import Point, Rect
from ..layout.netlist import CellInstance, Net, Netlist, PinRef


def write_bookshelf(netlist: Netlist, die: Rect, directory: str | Path, basename: str) -> None:
    """Write ``<basename>.{aux,nodes,nets,pl,scl}`` into ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    nodes_path = directory / f"{basename}.nodes"
    with open(nodes_path, "w") as handle:
        handle.write("UCLA nodes 1.0\n\n")
        handle.write(f"NumNodes : {netlist.num_cells}\n")
        terminals = sum(1 for c in netlist.cells if c.master.is_macro)
        handle.write(f"NumTerminals : {terminals}\n")
        for cell in netlist.cells:
            kind = " terminal" if cell.master.is_macro else ""
            handle.write(
                f"  {cell.name} {cell.master.width:.10g} "
                f"{cell.master.height:.10g}{kind}\n"
            )

    nets_path = directory / f"{basename}.nets"
    num_pins = sum(net.degree for net in netlist.nets)
    with open(nets_path, "w") as handle:
        handle.write("UCLA nets 1.0\n\n")
        handle.write(f"NumNets : {netlist.num_nets}\n")
        handle.write(f"NumPins : {num_pins}\n")
        for net in netlist.nets:
            handle.write(f"NetDegree : {net.degree} {net.name}\n")
            for ref in net.pins:
                cell = netlist.cells[ref.cell]
                spec = cell.master.pin(ref.pin)
                direction = "O" if ref == net.driver else "I"
                # Bookshelf pin offsets are relative to the cell center.
                dx = spec.offset_x - cell.master.width / 2
                dy = spec.offset_y - cell.master.height / 2
                handle.write(
                    f"  {cell.name} {direction} : {dx:.10g} {dy:.10g} # {ref.pin}\n"
                )

    pl_path = directory / f"{basename}.pl"
    with open(pl_path, "w") as handle:
        handle.write("UCLA pl 1.0\n\n")
        for cell in netlist.cells:
            location = cell.location or Point(0, 0)
            fixed = " /FIXED" if cell.master.is_macro else ""
            handle.write(f"{cell.name} {location.x:.10g} {location.y:.10g} : N{fixed}\n")

    scl_path = directory / f"{basename}.scl"
    with open(scl_path, "w") as handle:
        handle.write("UCLA scl 1.0\n\n")
        handle.write(f"# die {die.xlo:.10g} {die.ylo:.10g} {die.xhi:.10g} {die.yhi:.10g}\n")

    with open(directory / f"{basename}.aux", "w") as handle:
        handle.write(
            f"RowBasedPlacement : {basename}.nodes {basename}.nets "
            f"{basename}.pl {basename}.scl\n"
        )


def _strip_comment(line: str) -> str:
    return line.split("#", 1)[0].strip()


def read_bookshelf(
    directory: str | Path, basename: str, library_name: str = "bookshelf"
) -> tuple[Netlist, Rect]:
    """Read the Bookshelf subset written by :func:`write_bookshelf`.

    Cell masters are synthesized from the node dimensions and the pin
    offsets observed in the ``.nets`` file; pin direction comes from the
    net's I/O annotation.  Returns ``(netlist, die)`` where the die is
    read back from the ``.scl`` comment (or the placement bounding box if
    absent).
    """
    directory = Path(directory)

    # Pass 1: nodes -- name, width, height, terminal flag.
    node_dims: dict[str, tuple[float, float, bool]] = {}
    with open(directory / f"{basename}.nodes") as handle:
        for raw in handle:
            line = _strip_comment(raw)
            if not line or line.startswith(("UCLA", "NumNodes", "NumTerminals")):
                continue
            parts = line.split()
            name, width, height = parts[0], float(parts[1]), float(parts[2])
            node_dims[name] = (width, height, "terminal" in parts[3:])

    # Pass 2: nets -- collect per-cell pin usage to synthesize masters.
    raw_nets: list[tuple[str, list[tuple[str, str, float, float, str]]]] = []
    with open(directory / f"{basename}.nets") as handle:
        current: list[tuple[str, str, float, float, str]] | None = None
        name = ""
        for raw in handle:
            line = raw.split("#", 1)[0].strip()
            comment = raw.split("#", 1)[1].strip() if "#" in raw else ""
            if line.startswith("NetDegree"):
                if current is not None:
                    raw_nets.append((name, current))
                name = line.split()[-1]
                current = []
            elif line and ":" in line and current is not None and not line.startswith(
                ("UCLA", "NumNets", "NumPins")
            ):
                head, offsets = line.split(":")
                cell_name, direction = head.split()
                dx, dy = (float(v) for v in offsets.split())
                current.append((cell_name, direction, dx, dy, comment))
        if current is not None:
            raw_nets.append((name, current))

    # Synthesize one master per distinct node geometry + pin usage.
    pin_specs: dict[str, dict[str, PinSpec]] = {n: {} for n in node_dims}
    for _net, pins in raw_nets:
        for cell_name, direction, dx, dy, comment in pins:
            width, height, _term = node_dims[cell_name]
            pin_name = comment or f"{'O' if direction == 'O' else 'I'}{len(pin_specs[cell_name])}"
            pin_specs[cell_name].setdefault(
                pin_name,
                PinSpec(
                    name=pin_name,
                    direction=(
                        PinDirection.OUTPUT if direction == "O" else PinDirection.INPUT
                    ),
                    offset_x=dx + width / 2,
                    offset_y=dy + height / 2,
                ),
            )

    masters: dict[str, CellMaster] = {}
    cell_master_name: dict[str, str] = {}
    for cell_name, (width, height, terminal) in node_dims.items():
        pins = tuple(pin_specs[cell_name].values())
        if not terminal and not any(
            p.direction is PinDirection.OUTPUT for p in pins
        ):
            # A standard cell whose output happens to be unconnected in
            # this netlist: synthesize the (unused) output pin so the
            # master remains a legal standard cell.
            taken = {p.name for p in pins}
            out_name = "Y" if "Y" not in taken else "__OUT"
            pins = pins + (
                PinSpec(out_name, PinDirection.OUTPUT, width, 0.0),
            )
        key = f"{basename}_{cell_name}"
        masters[key] = CellMaster(
            name=key,
            width=width,
            height=height,
            pins=pins,
            is_macro=terminal,
        )
        cell_master_name[cell_name] = key
    library = CellLibrary(name=library_name, masters=tuple(masters.values()))

    netlist = Netlist(name=basename, library=library)
    index_of: dict[str, int] = {}
    for cell_name in node_dims:
        index_of[cell_name] = netlist.add_cell(
            CellInstance(cell_name, library.master(cell_master_name[cell_name]))
        )

    # Pass 3: placement.
    xs: list[float] = []
    ys: list[float] = []
    with open(directory / f"{basename}.pl") as handle:
        for raw in handle:
            line = _strip_comment(raw)
            if not line or line.startswith("UCLA"):
                continue
            head = line.split(":")[0].split()
            cell_name, x, y = head[0], float(head[1]), float(head[2])
            cell = netlist.cells[index_of[cell_name]]
            cell.location = Point(x, y)
            xs.extend([x, x + cell.master.width])
            ys.extend([y, y + cell.master.height])

    for net_name, pins in raw_nets:
        driver = None
        sinks = []
        for cell_name, direction, _dx, _dy, comment in pins:
            cell = netlist.cells[index_of[cell_name]]
            pin_name = comment or next(
                p.name
                for p in cell.master.pins
                if (p.direction is PinDirection.OUTPUT) == (direction == "O")
            )
            ref = PinRef(index_of[cell_name], pin_name)
            if direction == "O" and driver is None:
                driver = ref
            else:
                sinks.append(ref)
        if driver is not None and sinks:
            netlist.add_net(Net(net_name, driver, tuple(sinks)))

    die = None
    scl = directory / f"{basename}.scl"
    if scl.exists():
        with open(scl) as handle:
            for raw in handle:
                if raw.startswith("# die"):
                    values = [float(v) for v in raw.split()[2:6]]
                    die = Rect(*values)
    if die is None:
        die = Rect(min(xs), min(ys), max(xs), max(ys))
    return netlist, die
