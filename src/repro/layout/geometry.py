"""Planar geometry primitives used throughout the layout substrate.

All coordinates are in abstract database units (DBU).  The layout substrate
never assumes a particular physical unit; the attack only consumes relative
distances, so only consistency matters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True, slots=True)
class Point:
    """A point on a single layer of the layout plane."""

    x: float
    y: float

    def manhattan(self, other: "Point") -> float:
        """Manhattan (L1) distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def euclidean(self, other: "Point") -> float:
        """Euclidean (L2) distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def chebyshev(self, other: "Point") -> float:
        """Chebyshev (L-infinity) distance to ``other``."""
        return max(abs(self.x - other.x), abs(self.y - other.y))

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y


@dataclass(frozen=True, slots=True)
class Rect:
    """An axis-aligned rectangle, defined by inclusive corners."""

    xlo: float
    ylo: float
    xhi: float
    yhi: float

    def __post_init__(self) -> None:
        if self.xhi < self.xlo or self.yhi < self.ylo:
            raise ValueError(f"degenerate rectangle: {self}")

    @classmethod
    def from_points(cls, a: Point, b: Point) -> "Rect":
        """Bounding rectangle of two points (in any order)."""
        return cls(min(a.x, b.x), min(a.y, b.y), max(a.x, b.x), max(a.y, b.y))

    @property
    def width(self) -> float:
        return self.xhi - self.xlo

    @property
    def height(self) -> float:
        return self.yhi - self.ylo

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.xlo + self.xhi) / 2.0, (self.ylo + self.yhi) / 2.0)

    @property
    def half_perimeter(self) -> float:
        """Half-perimeter wirelength (HPWL) of the rectangle."""
        return self.width + self.height

    def contains(self, p: Point, tol: float = 0.0) -> bool:
        """Whether ``p`` lies inside (with optional boundary tolerance)."""
        return (
            self.xlo - tol <= p.x <= self.xhi + tol
            and self.ylo - tol <= p.y <= self.yhi + tol
        )

    def intersects(self, other: "Rect") -> bool:
        """Whether the two rectangles overlap (boundary touch counts)."""
        return not (
            other.xlo > self.xhi
            or other.xhi < self.xlo
            or other.ylo > self.yhi
            or other.yhi < self.ylo
        )

    def expanded(self, margin: float) -> "Rect":
        """Return a copy grown by ``margin`` on every side."""
        return Rect(
            self.xlo - margin, self.ylo - margin, self.xhi + margin, self.yhi + margin
        )

    def clamp(self, p: Point) -> Point:
        """Project ``p`` onto the rectangle."""
        return Point(
            min(max(p.x, self.xlo), self.xhi), min(max(p.y, self.ylo), self.yhi)
        )


def bounding_box(points: Iterable[Point]) -> Rect:
    """Bounding rectangle of a non-empty collection of points."""
    pts = list(points)
    if not pts:
        raise ValueError("bounding_box() requires at least one point")
    xs = [p.x for p in pts]
    ys = [p.y for p in pts]
    return Rect(min(xs), min(ys), max(xs), max(ys))


def hpwl(points: Iterable[Point]) -> float:
    """Half-perimeter wirelength of a set of pin locations."""
    return bounding_box(points).half_perimeter


def centroid(points: Iterable[Point]) -> Point:
    """Arithmetic mean of a non-empty collection of points."""
    pts = list(points)
    if not pts:
        raise ValueError("centroid() requires at least one point")
    return Point(
        sum(p.x for p in pts) / len(pts),
        sum(p.y for p in pts) / len(pts),
    )


def snap(value: float, pitch: float) -> float:
    """Snap ``value`` to the nearest multiple of ``pitch``."""
    if pitch <= 0:
        raise ValueError(f"pitch must be positive, got {pitch}")
    return round(value / pitch) * pitch


def snap_point(p: Point, pitch: float) -> Point:
    """Snap both coordinates of ``p`` to the routing ``pitch``."""
    return Point(snap(p.x, pitch), snap(p.y, pitch))
