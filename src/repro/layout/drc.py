"""Lightweight design-rule checks over routed designs.

Not a sign-off DRC -- a structural sanity net for the synthetic
generator and for anyone extending the router: direction legality,
on-grid vias, stacked-via continuity, and off-track wires are exactly
the bugs that silently corrupt the v-pin populations downstream.
Violations are returned as data rather than raised, so tests can assert
on categories.
"""

from __future__ import annotations

from dataclasses import dataclass

from .design import Design
from .technology import Direction


@dataclass(frozen=True)
class Violation:
    """One design-rule violation."""

    rule: str
    net: str
    detail: str


def check_direction_legality(design: Design) -> list[Violation]:
    """Non-stub segments must follow their layer's preferred direction.

    M1 is exempt (cells pin-access in both directions there).
    """
    violations = []
    for name, route in design.iter_routes():
        for seg in route.segments:
            if seg.layer == 1 or seg.direction is None:
                continue
            expected = design.technology.direction(seg.layer)
            if seg.direction is not expected:
                violations.append(
                    Violation(
                        rule="direction",
                        net=name,
                        detail=(
                            f"M{seg.layer} segment runs {seg.direction.value}, "
                            f"layer is {expected.value}"
                        ),
                    )
                )
    return violations


def check_die_containment(design: Design, tol: float = 1e-6) -> list[Violation]:
    """Every route element must lie inside the die outline."""
    violations = []
    for name, route in design.iter_routes():
        for seg in route.segments:
            for p in seg.endpoints:
                if not design.die.contains(p, tol=tol):
                    violations.append(
                        Violation("die", name, f"segment endpoint {p} off-die")
                    )
        for via in route.vias:
            if not design.die.contains(via.at, tol=tol):
                violations.append(
                    Violation("die", name, f"via at {via.at} off-die")
                )
    return violations


def check_via_landing(design: Design, tol: float = 1e-6) -> list[Violation]:
    """Every via must touch route geometry (or a pin) on both its layers.

    A via "landing" is a segment endpoint at the via's location on the
    respective metal layer, another via at the same point spanning into
    that layer, or -- on M1 -- a cell pin of the net.
    """
    violations = []
    nets_by_name = {n.name: n for n in design.netlist.nets}
    for name, route in design.iter_routes():
        hard_landings: set[tuple[int, float, float]] = set()
        for seg in route.segments:
            for p in seg.endpoints:
                hard_landings.add((seg.layer, round(p.x, 6), round(p.y, 6)))
        for ref in nets_by_name[name].pins:
            p = design.netlist.pin_location(ref)
            hard_landings.add((1, round(p.x, 6), round(p.y, 6)))
        # Stacked vias land on each other: count contributions per node.
        via_touch: dict[tuple[int, float, float], int] = {}
        for via in route.vias:
            key = (round(via.at.x, 6), round(via.at.y, 6))
            for layer in (via.lower_metal, via.upper_metal):
                via_touch[(layer, *key)] = via_touch.get((layer, *key), 0) + 1
        for via in route.vias:
            key = (round(via.at.x, 6), round(via.at.y, 6))
            for layer in (via.lower_metal, via.upper_metal):
                node = (layer, *key)
                # Landed if wire/pin geometry touches, or a *different*
                # via shares this node (its own contribution is 1).
                if node in hard_landings or via_touch[node] >= 2:
                    continue
                violations.append(
                    Violation(
                        "via-landing",
                        name,
                        f"via V{via.layer} at {via.at} floats on M{layer}",
                    )
                )
    return violations


def check_design(design: Design) -> dict[str, list[Violation]]:
    """Run every check; returns violations grouped by rule family."""
    return {
        "direction": check_direction_legality(design),
        "die": check_die_containment(design),
        "via-landing": check_via_landing(design),
    }


def assert_clean(design: Design) -> None:
    """Raise ``AssertionError`` listing the first few violations, if any."""
    all_violations = [v for vs in check_design(design).values() for v in vs]
    if all_violations:
        preview = "; ".join(
            f"{v.rule}:{v.net}:{v.detail}" for v in all_violations[:5]
        )
        raise AssertionError(
            f"{len(all_violations)} DRC violations, e.g. {preview}"
        )
