"""ASCII visualization of layouts and split views.

Terminal-renderable density maps: cell placement, per-layer wire usage,
and v-pin scatter.  Useful for eyeballing what the generator produced and
for the examples/illustrations; not a GDS viewer.
"""

from __future__ import annotations

import numpy as np

from .design import Design
from .geometry import Rect

_SHADES = " .:-=+*#%@"


def _render(grid: np.ndarray, title: str) -> str:
    """Render a 2-D non-negative grid as shaded characters (row 0 at top)."""
    peak = grid.max()
    lines = [title]
    normalized = grid / peak if peak > 0 else grid
    for row in normalized[::-1]:
        cells = [
            _SHADES[min(int(v * (len(_SHADES) - 1) + 0.5), len(_SHADES) - 1)]
            for v in row
        ]
        lines.append("|" + "".join(cells) + "|")
    lines.append(f"(peak = {peak:.3g})")
    return "\n".join(lines)


def _bin_points(
    xs: np.ndarray,
    ys: np.ndarray,
    die: Rect,
    cols: int,
    rows: int,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    grid = np.zeros((rows, cols))
    if len(xs) == 0:
        return grid
    ci = np.clip(((xs - die.xlo) / max(die.width, 1e-9) * cols).astype(int), 0, cols - 1)
    ri = np.clip(((ys - die.ylo) / max(die.height, 1e-9) * rows).astype(int), 0, rows - 1)
    np.add.at(grid, (ri, ci), 1.0 if weights is None else weights)
    return grid


def placement_map(design: Design, cols: int = 64, rows: int = 24) -> str:
    """Cell-area density over the die (macros dominate their bins)."""
    xs, ys, weights = [], [], []
    for cell in design.netlist.cells:
        if cell.location is None:
            continue
        center = cell.outline.center
        xs.append(center.x)
        ys.append(center.y)
        weights.append(cell.area)
    grid = _bin_points(
        np.array(xs), np.array(ys), design.die, cols, rows, np.array(weights)
    )
    return _render(grid, f"placement density ({design.name})")


def wire_density_map(
    design: Design, layer: int, cols: int = 64, rows: int = 24
) -> str:
    """Routed wirelength density on one metal layer (segment midpoints)."""
    design.technology.metal(layer)  # validates the index
    xs, ys, weights = [], [], []
    for route in design.routes.values():
        for seg in route.segments:
            if seg.layer != layer or seg.length == 0:
                continue
            xs.append((seg.a.x + seg.b.x) / 2)
            ys.append((seg.a.y + seg.b.y) / 2)
            weights.append(seg.length)
    grid = _bin_points(
        np.array(xs), np.array(ys), design.die, cols, rows, np.array(weights)
    )
    return _render(grid, f"M{layer} wire density ({design.name})")


def vpin_map(view, cols: int = 64, rows: int = 24) -> str:
    """V-pin density of a split view (what the attacker's RC feature sees)."""
    arr = view.arrays()
    die = Rect(0, 0, max(view.die_width, 1e-9), max(view.die_height, 1e-9))
    grid = _bin_points(arr["vx"], arr["vy"], die, cols, rows)
    return _render(
        grid,
        f"v-pin density ({view.design_name}, split V{view.split_layer}, "
        f"{len(view)} v-pins)",
    )


def layer_usage_chart(design: Design) -> str:
    """Horizontal bar chart of wirelength per metal layer."""
    totals = design.wirelength_by_layer()
    peak = max(totals.values()) if totals else 1.0
    lines = [f"wirelength by layer ({design.name})"]
    for layer in sorted(totals, reverse=True):
        bar = "#" * int(40 * totals[layer] / peak) if peak else ""
        direction = design.technology.direction(layer).value
        lines.append(f"  M{layer} ({direction}) {totals[layer]:10.0f} {bar}")
    return "\n".join(lines)
