"""Back-end technology description: the metal/via layer stack.

The paper's setup (ISPD-2011 benchmarks) uses 9 metal layers and 8 via
layers with a 4x variation in wire width/pitch across the stack and
unidirectional routing per layer.  Metal layers alternate horizontal and
vertical; the *top* metal layer (M9) is horizontal, which is what makes
matching v-pin pairs at split layer 8 share a y-coordinate (paper
Section III-G).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Direction(enum.Enum):
    """Preferred routing direction of a metal layer."""

    HORIZONTAL = "H"
    VERTICAL = "V"

    @property
    def other(self) -> "Direction":
        if self is Direction.HORIZONTAL:
            return Direction.VERTICAL
        return Direction.HORIZONTAL


@dataclass(frozen=True, slots=True)
class MetalLayer:
    """One metal layer of the stack.

    ``index`` is 1-based (M1 is the lowest, adjacent to the cells).
    ``pitch`` is the routing track pitch and ``width`` the default wire
    width, both in DBU.
    """

    index: int
    name: str
    direction: Direction
    pitch: float
    width: float

    def __post_init__(self) -> None:
        if self.index < 1:
            raise ValueError(f"metal layer index must be >= 1, got {self.index}")
        if self.pitch <= 0 or self.width <= 0:
            raise ValueError(f"pitch/width must be positive on {self.name}")


@dataclass(frozen=True, slots=True)
class Technology:
    """An ordered stack of metal layers plus the implied via layers.

    Via layer ``k`` sits between metal layers ``k`` and ``k + 1``; a split
    at via layer ``k`` gives the attacker all metal at or below ``k`` and
    hides all metal at or above ``k + 1``.
    """

    name: str
    metal_layers: tuple[MetalLayer, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if len(self.metal_layers) < 2:
            raise ValueError("a technology needs at least two metal layers")
        for i, layer in enumerate(self.metal_layers, start=1):
            if layer.index != i:
                raise ValueError(
                    f"metal layers must be contiguous from 1; "
                    f"position {i} holds {layer.name} (index {layer.index})"
                )

    @property
    def num_metal_layers(self) -> int:
        return len(self.metal_layers)

    @property
    def num_via_layers(self) -> int:
        return self.num_metal_layers - 1

    @property
    def top_metal(self) -> MetalLayer:
        return self.metal_layers[-1]

    @property
    def highest_via_layer(self) -> int:
        """Index of the topmost via layer (split here hides only top metal)."""
        return self.num_via_layers

    def metal(self, index: int) -> MetalLayer:
        """Metal layer by 1-based index."""
        if not 1 <= index <= self.num_metal_layers:
            raise ValueError(
                f"metal index {index} out of range 1..{self.num_metal_layers}"
            )
        return self.metal_layers[index - 1]

    def direction(self, index: int) -> Direction:
        """Preferred direction of metal layer ``index``."""
        return self.metal(index).direction

    def is_valid_via_layer(self, index: int) -> bool:
        return 1 <= index <= self.num_via_layers

    def validate_via_layer(self, index: int) -> int:
        if not self.is_valid_via_layer(index):
            raise ValueError(
                f"via layer {index} out of range 1..{self.num_via_layers}"
            )
        return index

    def layers_above_via(self, via_layer: int) -> tuple[MetalLayer, ...]:
        """Metal layers hidden from the attacker for a split at ``via_layer``."""
        self.validate_via_layer(via_layer)
        return self.metal_layers[via_layer:]

    def layers_at_or_below_via(self, via_layer: int) -> tuple[MetalLayer, ...]:
        """Metal layers visible to the attacker for a split at ``via_layer``."""
        self.validate_via_layer(via_layer)
        return self.metal_layers[:via_layer]


def make_default_technology(
    num_metal_layers: int = 9,
    base_pitch: float = 1.0,
    width_variation: float = 4.0,
) -> Technology:
    """The paper's 9-metal-layer stack with ~4x wire size variation.

    Directions alternate so that the top metal layer is HORIZONTAL (the
    property exploited by the "Y"-suffixed configurations).  Pitch and
    width grow geometrically from M1 to M9 by ``width_variation`` overall,
    mirroring the coarse upper layers of the ISPD-2011 stack.
    """
    if num_metal_layers < 2:
        raise ValueError("need at least two metal layers")
    top_dir = Direction.HORIZONTAL
    layers = []
    for index in range(1, num_metal_layers + 1):
        # Walk the alternation down from the (horizontal) top layer.
        steps_from_top = num_metal_layers - index
        direction = top_dir if steps_from_top % 2 == 0 else top_dir.other
        grow = width_variation ** ((index - 1) / max(num_metal_layers - 1, 1))
        layers.append(
            MetalLayer(
                index=index,
                name=f"M{index}",
                direction=direction,
                pitch=base_pitch * grow,
                width=0.5 * base_pitch * grow,
            )
        )
    return Technology(name=f"generic-{num_metal_layers}lm", metal_layers=tuple(layers))
