"""Elmore-delay estimation over routed nets.

The paper keeps ``TotalWirelength`` as a feature because "the wirelength
of each net impacts timing" (Section III-B).  This module makes that
relationship explicit: per-layer RC constants (resistance falls and
capacitance rises with the wider upper layers), an Elmore-style delay
estimate per net, and a helper that bounds the plausible combined length
of a v-pin pair from a delay budget -- the physical justification for
pruning pairs with absurd ``TotalWirelength``.

The model is deliberately first-order (lumped RC per layer segment,
unit driver resistance scaled by drive strength); only *relative* delays
matter to the attack analyses built on top.
"""

from __future__ import annotations

from dataclasses import dataclass

from .design import Design, Route
from .technology import Technology


@dataclass(frozen=True)
class RCModel:
    """Per-unit-length RC constants derived from the layer geometry.

    Resistance scales inversely with wire width; capacitance scales
    roughly linearly with width (area term dominating at these feature
    sizes).  ``unit_r``/``unit_c`` anchor the scales at M1.
    """

    technology: Technology
    unit_r: float = 1.0
    unit_c: float = 1.0
    via_r: float = 2.0

    def resistance_per_unit(self, layer: int) -> float:
        """Sheet-resistance proxy of ``layer`` per unit length.

        Upper layers are both wider *and* thicker, so resistance falls
        quadratically with the width scale -- this is what makes long
        nets faster on the top layers despite their higher capacitance
        (otherwise the RC product would be scale-invariant and layer
        promotion would buy nothing).
        """
        width = self.technology.metal(layer).width
        base = self.technology.metal(1).width
        return self.unit_r * (base / width) ** 2

    def capacitance_per_unit(self, layer: int) -> float:
        """Capacitance proxy of ``layer`` per unit length."""
        width = self.technology.metal(layer).width
        base = self.technology.metal(1).width
        return self.unit_c * width / base


def route_rc(route: Route, model: RCModel) -> tuple[float, float]:
    """Total (resistance, capacitance) of a route under ``model``."""
    resistance = 0.0
    capacitance = 0.0
    for seg in route.segments:
        resistance += seg.length * model.resistance_per_unit(seg.layer)
        capacitance += seg.length * model.capacitance_per_unit(seg.layer)
    resistance += len(route.vias) * model.via_r
    return resistance, capacitance


def elmore_delay(
    route: Route,
    model: RCModel,
    driver_resistance: float = 10.0,
) -> float:
    """First-order Elmore delay estimate of a routed net.

    Lumped approximation: ``R_drv * C_total + (R_wire * C_wire) / 2``.
    Good enough to rank nets and to translate a delay budget into a
    wirelength bound; not a timer.
    """
    resistance, capacitance = route_rc(route, model)
    return driver_resistance * capacitance + 0.5 * resistance * capacitance


def design_delays(design: Design, model: RCModel | None = None) -> dict[str, float]:
    """Elmore delay per net of a design."""
    model = model or RCModel(design.technology)
    delays = {}
    for name, route in design.iter_routes():
        driver_cell = design.netlist.cell_of(
            next(n for n in design.netlist.nets if n.name == name).driver
        )
        # Stronger drivers have lower output resistance.
        driver_resistance = 10.0 / max(driver_cell.master.drive_strength, 0.25)
        delays[name] = elmore_delay(route, model, driver_resistance)
    return delays


def wirelength_budget(
    design: Design,
    percentile: float = 99.0,
    model: RCModel | None = None,
) -> float:
    """A combined-wirelength bound implied by the design's own timing.

    Takes the ``percentile`` of the observed per-net *capacitance-weighted*
    lengths as the budget: a candidate v-pin pair whose combined FEOL
    wirelength already exceeds what (almost) every real net tolerates is
    physically implausible -- the reasoning the TotalWirelength feature
    encodes implicitly.
    """
    import numpy as np

    lengths = [route.wirelength for route in design.routes.values()]
    if not lengths:
        return 0.0
    return float(np.percentile(lengths, percentile))
