"""Design serialization: save/load routed designs as JSON.

The paper's attacker starts from a GDSII layout file; this module is the
repository's equivalent interchange point, so challenge instances can be
generated once and attacked many times (or shipped to someone else)
without re-running the generator.  The format is a stable, versioned
JSON document; cell masters are referenced by library name and resolved
against :func:`repro.layout.cells.make_standard_library` on load.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .cells import CellLibrary, make_standard_library
from .design import Design, Route, RouteSegment, Via
from .geometry import Point, Rect
from .netlist import CellInstance, Net, Netlist, PinRef
from .technology import Direction, MetalLayer, Technology

FORMAT_VERSION = 1


def design_to_dict(design: Design) -> dict[str, Any]:
    """Serialize a design to a JSON-compatible dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "name": design.name,
        "die": [design.die.xlo, design.die.ylo, design.die.xhi, design.die.yhi],
        "technology": {
            "name": design.technology.name,
            "metal_layers": [
                {
                    "index": m.index,
                    "name": m.name,
                    "direction": m.direction.value,
                    "pitch": m.pitch,
                    "width": m.width,
                }
                for m in design.technology.metal_layers
            ],
        },
        "library": design.library.name,
        "cells": [
            {
                "name": c.name,
                "master": c.master.name,
                "location": [c.location.x, c.location.y] if c.location else None,
            }
            for c in design.netlist.cells
        ],
        "nets": [
            {
                "name": n.name,
                "driver": [n.driver.cell, n.driver.pin],
                "sinks": [[s.cell, s.pin] for s in n.sinks],
            }
            for n in design.netlist.nets
        ],
        "routes": {
            name: {
                "segments": [
                    [s.layer, s.a.x, s.a.y, s.b.x, s.b.y] for s in route.segments
                ],
                "vias": [[v.layer, v.at.x, v.at.y] for v in route.vias],
            }
            for name, route in design.routes.items()
        },
    }


def design_from_dict(
    data: dict[str, Any], library: CellLibrary | None = None
) -> Design:
    """Rebuild a design from :func:`design_to_dict` output."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported design format version: {version!r}")
    if library is None:
        library = make_standard_library()
    if library.name != data["library"]:
        raise ValueError(
            f"design was saved against library {data['library']!r}, "
            f"got {library.name!r}"
        )
    technology = Technology(
        name=data["technology"]["name"],
        metal_layers=tuple(
            MetalLayer(
                index=m["index"],
                name=m["name"],
                direction=Direction(m["direction"]),
                pitch=m["pitch"],
                width=m["width"],
            )
            for m in data["technology"]["metal_layers"]
        ),
    )
    netlist = Netlist(name=data["name"], library=library)
    for cell in data["cells"]:
        location = cell["location"]
        netlist.add_cell(
            CellInstance(
                name=cell["name"],
                master=library.master(cell["master"]),
                location=Point(*location) if location else None,
            )
        )
    for net in data["nets"]:
        netlist.add_net(
            Net(
                name=net["name"],
                driver=PinRef(net["driver"][0], net["driver"][1]),
                sinks=tuple(PinRef(c, p) for c, p in net["sinks"]),
            )
        )
    routes = {}
    for name, route in data["routes"].items():
        routes[name] = Route(
            net=name,
            segments=tuple(
                RouteSegment(layer, Point(ax, ay), Point(bx, by))
                for layer, ax, ay, bx, by in route["segments"]
            ),
            vias=tuple(
                Via(layer, Point(x, y)) for layer, x, y in route["vias"]
            ),
        )
    die = Rect(*data["die"])
    return Design(
        name=data["name"],
        technology=technology,
        netlist=netlist,
        die=die,
        routes=routes,
    )


def save_design(design: Design, path: str | Path) -> None:
    """Write a design to a JSON file."""
    with open(path, "w") as handle:
        json.dump(design_to_dict(design), handle)


def load_design(path: str | Path, library: CellLibrary | None = None) -> Design:
    """Read a design from a JSON file."""
    with open(path) as handle:
        return design_from_dict(json.load(handle), library)
