"""Standard-cell library modeling.

The attack's ``InArea``/``OutArea`` features exist because driver strength
is highly correlated with cell area (paper Section III-A).  The synthetic
library therefore provides each logic function in several drive strengths
with proportionally growing area, plus a handful of large macros to
reproduce the area outliers the paper observes in Fig. 8.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class PinDirection(enum.Enum):
    """Direction of a cell pin as seen from the cell."""

    INPUT = "input"
    OUTPUT = "output"


@dataclass(frozen=True, slots=True)
class PinSpec:
    """A pin of a cell master, with its placement offset inside the cell."""

    name: str
    direction: PinDirection
    offset_x: float = 0.0
    offset_y: float = 0.0


@dataclass(frozen=True, slots=True)
class CellMaster:
    """A library cell: geometry plus typed pins.

    ``drive_strength`` is a relative measure (1 = minimum size); area
    scales with it, which is the correlation the area features rely on.
    """

    name: str
    width: float
    height: float
    pins: tuple[PinSpec, ...]
    drive_strength: float = 1.0
    is_macro: bool = False

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"cell {self.name} has non-positive dimensions")
        names = [p.name for p in self.pins]
        if len(set(names)) != len(names):
            raise ValueError(f"cell {self.name} has duplicate pin names")
        if not any(p.direction is PinDirection.OUTPUT for p in self.pins) and not (
            self.is_macro
        ):
            raise ValueError(f"standard cell {self.name} has no output pin")

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def input_pins(self) -> tuple[PinSpec, ...]:
        return tuple(p for p in self.pins if p.direction is PinDirection.INPUT)

    @property
    def output_pins(self) -> tuple[PinSpec, ...]:
        return tuple(p for p in self.pins if p.direction is PinDirection.OUTPUT)

    def pin(self, name: str) -> PinSpec:
        for p in self.pins:
            if p.name == name:
                return p
        raise KeyError(f"cell {self.name} has no pin {name!r}")


@dataclass(frozen=True)
class CellLibrary:
    """An immutable collection of cell masters, indexed by name."""

    name: str
    masters: tuple[CellMaster, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [m.name for m in self.masters]
        if len(set(names)) != len(names):
            raise ValueError("library contains duplicate master names")

    def __len__(self) -> int:
        return len(self.masters)

    def __contains__(self, name: str) -> bool:
        return any(m.name == name for m in self.masters)

    def master(self, name: str) -> CellMaster:
        for m in self.masters:
            if m.name == name:
                return m
        raise KeyError(f"library {self.name} has no master {name!r}")

    @property
    def standard_cells(self) -> tuple[CellMaster, ...]:
        return tuple(m for m in self.masters if not m.is_macro)

    @property
    def macros(self) -> tuple[CellMaster, ...]:
        return tuple(m for m in self.masters if m.is_macro)


def _pins_for(function: str, n_inputs: int, width: float) -> tuple[PinSpec, ...]:
    """Evenly spread input pins along the cell, output pin at the right."""
    step = width / (n_inputs + 1)
    inputs = tuple(
        PinSpec(
            name=chr(ord("A") + i),
            direction=PinDirection.INPUT,
            offset_x=step * (i + 1),
            offset_y=0.0,
        )
        for i in range(n_inputs)
    )
    output = PinSpec(
        name="Y" if function != "DFF" else "Q",
        direction=PinDirection.OUTPUT,
        offset_x=width,
        offset_y=0.0,
    )
    return inputs + (output,)


_FUNCTIONS: tuple[tuple[str, int, float], ...] = (
    # (function, n_inputs, base width in row heights)
    ("INV", 1, 1.0),
    ("BUF", 1, 1.5),
    ("NAND2", 2, 2.0),
    ("NOR2", 2, 2.0),
    ("AND2", 2, 2.5),
    ("OR2", 2, 2.5),
    ("XOR2", 2, 3.0),
    ("NAND3", 3, 3.0),
    ("NOR3", 3, 3.0),
    ("AOI21", 3, 3.5),
    ("OAI21", 3, 3.5),
    ("MUX2", 3, 4.0),
    ("DFF", 2, 6.0),
)

_DRIVE_STRENGTHS: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0)


def make_standard_library(
    row_height: float = 8.0,
    macro_sizes: tuple[tuple[float, float], ...] = ((120.0, 160.0), (200.0, 120.0)),
) -> CellLibrary:
    """Build the default synthetic library.

    Every logic function comes in drive strengths X1..X8 whose widths (and
    therefore areas) scale with the strength -- the correlation that makes
    ``InArea``/``OutArea`` informative.  Two macro masters provide the
    large-area outliers seen in the paper's feature distributions.
    """
    masters: list[CellMaster] = []
    for function, n_inputs, base_width in _FUNCTIONS:
        for strength in _DRIVE_STRENGTHS:
            # Width grows sub-linearly with drive (shared diffusion), which
            # keeps the area/drive correlation strong but not exactly 1.0.
            width = row_height * base_width * (0.55 + 0.45 * strength)
            masters.append(
                CellMaster(
                    name=f"{function}_X{strength:g}",
                    width=width,
                    height=row_height,
                    pins=_pins_for(function, n_inputs, width),
                    drive_strength=strength,
                )
            )
    for i, (w, h) in enumerate(macro_sizes, start=1):
        pins = tuple(
            PinSpec(
                name=f"D{j}",
                direction=PinDirection.INPUT,
                offset_x=w * (j + 1) / 9.0,
                offset_y=0.0,
            )
            for j in range(4)
        ) + tuple(
            PinSpec(
                name=f"Q{j}",
                direction=PinDirection.OUTPUT,
                offset_x=w * (j + 1) / 9.0,
                offset_y=h,
            )
            for j in range(4)
        )
        masters.append(
            CellMaster(
                name=f"MACRO{i}",
                width=w,
                height=h,
                pins=pins,
                drive_strength=16.0,
                is_macro=True,
            )
        )
    return CellLibrary(name="synthlib", masters=tuple(masters))
