"""Gate-level netlist: placed cell instances and the nets connecting them.

A net connects exactly one driver (cell output pin) to one or more sinks
(cell input pins).  This single-driver invariant is what makes the paper's
pair-legality rule well defined: a v-pin pair in which *both* sides attach
to output pins can never belong to the same net.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .cells import CellLibrary, CellMaster, PinDirection
from .geometry import Point, Rect


@dataclass(slots=True)
class CellInstance:
    """A placed occurrence of a library master.

    ``location`` is the lower-left corner of the cell outline; ``None``
    until placement.
    """

    name: str
    master: CellMaster
    location: Point | None = None

    @property
    def is_placed(self) -> bool:
        return self.location is not None

    @property
    def area(self) -> float:
        return self.master.area

    @property
    def outline(self) -> Rect:
        if self.location is None:
            raise ValueError(f"cell {self.name} is not placed")
        return Rect(
            self.location.x,
            self.location.y,
            self.location.x + self.master.width,
            self.location.y + self.master.height,
        )

    def pin_location(self, pin_name: str) -> Point:
        """Absolute location of a pin of this (placed) instance."""
        if self.location is None:
            raise ValueError(f"cell {self.name} is not placed")
        spec = self.master.pin(pin_name)
        return Point(self.location.x + spec.offset_x, self.location.y + spec.offset_y)


@dataclass(frozen=True, slots=True)
class PinRef:
    """Reference to one pin of one cell instance, by cell index."""

    cell: int
    pin: str


@dataclass(slots=True)
class Net:
    """A logical net: one driver pin plus one or more sink pins."""

    name: str
    driver: PinRef
    sinks: tuple[PinRef, ...]

    def __post_init__(self) -> None:
        if not self.sinks:
            raise ValueError(f"net {self.name} has no sinks")

    @property
    def pins(self) -> tuple[PinRef, ...]:
        return (self.driver,) + self.sinks

    @property
    def degree(self) -> int:
        return 1 + len(self.sinks)


@dataclass
class Netlist:
    """Cells plus nets, with structural validation."""

    name: str
    library: CellLibrary
    cells: list[CellInstance] = field(default_factory=list)
    nets: list[Net] = field(default_factory=list)

    def add_cell(self, cell: CellInstance) -> int:
        """Append a cell and return its index."""
        self.cells.append(cell)
        return len(self.cells) - 1

    def add_net(self, net: Net) -> None:
        """Append a net after validating its pin references."""
        self._validate_net(net)
        self.nets.append(net)

    def _validate_net(self, net: Net) -> None:
        for ref in net.pins:
            if not 0 <= ref.cell < len(self.cells):
                raise ValueError(f"net {net.name}: cell index {ref.cell} out of range")
            master = self.cells[ref.cell].master
            spec = master.pin(ref.pin)  # raises KeyError on unknown pin
            expected = (
                PinDirection.OUTPUT if ref == net.driver else PinDirection.INPUT
            )
            if spec.direction is not expected:
                raise ValueError(
                    f"net {net.name}: pin {master.name}.{ref.pin} has direction "
                    f"{spec.direction.value}, expected {expected.value}"
                )

    def pin_direction(self, ref: PinRef) -> PinDirection:
        """Direction of the referenced pin."""
        return self.cells[ref.cell].master.pin(ref.pin).direction

    def pin_location(self, ref: PinRef) -> Point:
        """Absolute placed location of the referenced pin."""
        return self.cells[ref.cell].pin_location(ref.pin)

    def cell_of(self, ref: PinRef) -> CellInstance:
        return self.cells[ref.cell]

    def all_pin_locations(self) -> Iterator[tuple[PinRef, Point]]:
        """Iterate over every *connected* pin of every net with its location."""
        for net in self.nets:
            for ref in net.pins:
                yield ref, self.pin_location(ref)

    @property
    def num_cells(self) -> int:
        return len(self.cells)

    @property
    def num_nets(self) -> int:
        return len(self.nets)

    def validate(self) -> None:
        """Full structural check (used by tests and generators)."""
        names = [c.name for c in self.cells]
        if len(set(names)) != len(names):
            raise ValueError("duplicate cell instance names")
        net_names = [n.name for n in self.nets]
        if len(set(net_names)) != len(net_names):
            raise ValueError("duplicate net names")
        driven: set[tuple[int, str]] = set()
        for net in self.nets:
            self._validate_net(net)
            key = (net.driver.cell, net.driver.pin)
            if key in driven:
                raise ValueError(
                    f"output pin {key} drives more than one net ({net.name})"
                )
            driven.add(key)
