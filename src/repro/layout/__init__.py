"""Layout substrate: geometry, technology, cells, netlists, routed designs."""

from .cells import (
    CellLibrary,
    CellMaster,
    PinDirection,
    PinSpec,
    make_standard_library,
)
from .design import Design, Route, RouteSegment, Via, route_connectivity_ok
from .drc import Violation, assert_clean, check_design
from .timing import RCModel, design_delays, elmore_delay, route_rc, wirelength_budget
from .visualize import layer_usage_chart, placement_map, vpin_map, wire_density_map
from .geometry import Point, Rect, bounding_box, centroid, hpwl, snap, snap_point
from .io import design_from_dict, design_to_dict, load_design, save_design
from .netlist import CellInstance, Net, Netlist, PinRef
from .technology import (
    Direction,
    MetalLayer,
    Technology,
    make_default_technology,
)

__all__ = [
    "CellInstance",
    "CellLibrary",
    "CellMaster",
    "Design",
    "Direction",
    "MetalLayer",
    "Net",
    "Netlist",
    "PinDirection",
    "PinRef",
    "PinSpec",
    "Point",
    "RCModel",
    "Rect",
    "Route",
    "RouteSegment",
    "Technology",
    "Via",
    "Violation",
    "assert_clean",
    "bounding_box",
    "centroid",
    "check_design",
    "design_delays",
    "design_from_dict",
    "design_to_dict",
    "elmore_delay",
    "hpwl",
    "layer_usage_chart",
    "load_design",
    "make_default_technology",
    "make_standard_library",
    "placement_map",
    "route_connectivity_ok",
    "route_rc",
    "save_design",
    "snap",
    "snap_point",
    "vpin_map",
    "wire_density_map",
    "wirelength_budget",
]
