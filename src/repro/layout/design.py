"""Placed-and-routed design: the input artifact of the split-manufacturing cut.

A :class:`Route` is a geometrically explicit 3-D polyline: wire segments on
metal layers plus vias between adjacent layers.  The split module later
partitions each route into FEOL (at/below the split layer) and BEOL (above)
by simple layer comparison, and recovers connectivity from shared segment
endpoints -- so routes must be *stitched*: consecutive elements share exact
coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .cells import CellLibrary
from .geometry import Point, Rect
from .netlist import Netlist, PinRef
from .technology import Direction, Technology


@dataclass(frozen=True, slots=True)
class RouteSegment:
    """A wire on a single metal layer between two axis-aligned points."""

    layer: int
    a: Point
    b: Point

    def __post_init__(self) -> None:
        if self.a.x != self.b.x and self.a.y != self.b.y:
            raise ValueError(f"segment on M{self.layer} is not axis-aligned: {self}")

    @property
    def length(self) -> float:
        return self.a.manhattan(self.b)

    @property
    def direction(self) -> Direction | None:
        """Routing direction, or ``None`` for a zero-length stub."""
        if self.a.x == self.b.x and self.a.y == self.b.y:
            return None
        if self.a.y == self.b.y:
            return Direction.HORIZONTAL
        return Direction.VERTICAL

    @property
    def endpoints(self) -> tuple[Point, Point]:
        return (self.a, self.b)


@dataclass(frozen=True, slots=True)
class Via:
    """A via connecting metal layers ``layer`` and ``layer + 1`` at ``at``."""

    layer: int
    at: Point

    @property
    def lower_metal(self) -> int:
        return self.layer

    @property
    def upper_metal(self) -> int:
        return self.layer + 1


@dataclass(frozen=True)
class Route:
    """The full routed geometry of one net."""

    net: str
    segments: tuple[RouteSegment, ...] = field(default_factory=tuple)
    vias: tuple[Via, ...] = field(default_factory=tuple)

    @property
    def wirelength(self) -> float:
        return sum(s.length for s in self.segments)

    @property
    def highest_metal(self) -> int:
        """Topmost metal layer touched by this route (0 if unrouted)."""
        top = max((s.layer for s in self.segments), default=0)
        top_via = max((v.upper_metal for v in self.vias), default=0)
        return max(top, top_via)

    def wirelength_on(self, layer: int) -> float:
        return sum(s.length for s in self.segments if s.layer == layer)

    def vias_on(self, via_layer: int) -> tuple[Via, ...]:
        return tuple(v for v in self.vias if v.layer == via_layer)

    def crosses_via_layer(self, via_layer: int) -> bool:
        """Whether a split at ``via_layer`` would cut this net."""
        return any(v.layer == via_layer for v in self.vias)


@dataclass
class Design:
    """A complete placed-and-routed design."""

    name: str
    technology: Technology
    netlist: Netlist
    die: Rect
    routes: dict[str, Route] = field(default_factory=dict)

    @property
    def library(self) -> CellLibrary:
        return self.netlist.library

    def route_of(self, net_name: str) -> Route:
        return self.routes[net_name]

    @property
    def total_wirelength(self) -> float:
        return sum(r.wirelength for r in self.routes.values())

    def wirelength_by_layer(self) -> dict[int, float]:
        """Total routed wirelength per metal layer (congestion profile)."""
        totals: dict[int, float] = {
            m.index: 0.0 for m in self.technology.metal_layers
        }
        for route in self.routes.values():
            for seg in route.segments:
                totals[seg.layer] += seg.length
        return totals

    def vias_by_layer(self) -> dict[int, int]:
        """Number of vias per via layer (v-pin counts before the cut)."""
        counts: dict[int, int] = {
            k: 0 for k in range(1, self.technology.num_via_layers + 1)
        }
        for route in self.routes.values():
            for via in route.vias:
                counts[via.layer] += 1
        return counts

    def nets_cut_at(self, via_layer: int) -> list[str]:
        """Names of nets that a split at ``via_layer`` would break."""
        self.technology.validate_via_layer(via_layer)
        return [
            name
            for name, route in self.routes.items()
            if route.crosses_via_layer(via_layer)
        ]

    def iter_routes(self) -> Iterator[tuple[str, Route]]:
        yield from self.routes.items()

    def validate(self, check_directions: bool = True) -> None:
        """Structural checks used by the generator tests.

        * every net has a route and vice versa;
        * every segment lies on a legal metal layer, inside the die;
        * (optionally) non-stub segments follow their layer's direction;
        * every via sits on a legal via layer.
        """
        self.netlist.validate()
        net_names = {n.name for n in self.netlist.nets}
        for name in self.routes:
            if name not in net_names:
                raise ValueError(f"route for unknown net {name!r}")
        for net in self.netlist.nets:
            if net.name not in self.routes:
                raise ValueError(f"net {net.name} has no route")
        for name, route in self.routes.items():
            for seg in route.segments:
                layer = self.technology.metal(seg.layer)
                if check_directions and seg.direction is not None:
                    if seg.direction is not layer.direction and seg.layer != 1:
                        raise ValueError(
                            f"net {name}: segment on {layer.name} runs "
                            f"{seg.direction.value}, layer is {layer.direction.value}"
                        )
                for p in seg.endpoints:
                    if not self.die.contains(p, tol=1e-6):
                        raise ValueError(f"net {name}: point {p} outside die")
            for via in route.vias:
                self.technology.validate_via_layer(via.layer)
                if not self.die.contains(via.at, tol=1e-6):
                    raise ValueError(f"net {name}: via {via} outside die")


def route_connectivity_ok(
    route: Route, pin_points: list[Point], tol: float = 1e-6
) -> bool:
    """Check that a route forms one connected component touching its pins.

    Connectivity is defined by exact (within ``tol``) endpoint sharing:
    two elements touch when they share a (layer, x, y) node; a via joins
    the same (x, y) on adjacent layers; cell pins live on M1.
    """
    import networkx as nx

    def node(layer: int, p: Point) -> tuple[int, float, float]:
        return (layer, round(p.x / tol) * tol, round(p.y / tol) * tol)

    graph: nx.Graph = nx.Graph()
    for seg in route.segments:
        graph.add_edge(node(seg.layer, seg.a), node(seg.layer, seg.b))
    for via in route.vias:
        graph.add_edge(node(via.lower_metal, via.at), node(via.upper_metal, via.at))
    pin_nodes = [node(1, p) for p in pin_points]
    for pn in pin_nodes:
        if pn not in graph:
            graph.add_node(pn)
    if graph.number_of_nodes() == 0:
        return False
    components = list(nx.connected_components(graph))
    return any(all(pn in comp for pn in pin_nodes) for comp in components)
