"""Zero-copy NumPy transport for :func:`repro.runtime.pool.parallel_map`.

Pickling a large read-only array into every worker payload copies it
once per task -- at paper scale (a 1M-cell view is ~9 columns of 8000
float64 each; a packed feature-column block can be hundreds of MB for
denser layers) that multiplies peak RSS by the job count.
:class:`SharedArray` wraps :class:`multiprocessing.shared_memory
.SharedMemory` so the block is allocated once and every process maps
the *same* pages:

* ``SharedArray.from_array(a)`` copies ``a`` into a fresh shared
  segment exactly once (the owner);
* pickling a :class:`SharedArray` serializes only ``(name, shape,
  dtype)`` -- a worker that unpickles it attaches to the existing
  segment by name, so the payload going through the pool is a few
  dozen bytes regardless of array size;
* on the serial fast path (``jobs=1``) ``parallel_map`` never pickles,
  the callee receives the very same object, and ``.array`` is simply a
  view -- zero copies, no shared segment round-trip needed beyond the
  initial ``from_array``;
* lifecycle is explicit: every process ``close()``-es its mapping, and
  only the owning process ``unlink()``-s the segment (or use the
  context-manager form, which does both on the owner).

Attached (non-owner) mappings deregister themselves from Python's
``resource_tracker`` because the owner keeps its own registration: on
Python < 3.13 there is no ``track=False``, and without the deregistration
a worker exiting would prematurely unlink a segment the parent still
uses.

The arrays exposed through ``.array`` are writable pages shared by all
mappers; treat them as read-only (the transport is for shipping inputs,
not for concurrent mutation -- no synchronization is provided).
"""

from __future__ import annotations

import time
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..obs.metrics import counter

#: Attach attempts beyond the first when the segment name is not (yet)
#: visible -- the owner may have published the name before the kernel
#: made the segment reachable from a freshly-forked worker.
ATTACH_RETRIES = 5

#: First retry backoff; doubles per attempt.
ATTACH_BACKOFF_S = 0.01


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to a named segment, retrying the name-visibility race.

    A worker can unpickle a :class:`SharedArray` (so the segment
    definitely exists) and still get ``FileNotFoundError`` from the
    first attach -- the publish is not atomic with visibility on every
    platform.  A few short, exponentially backed-off retries distinguish
    that race (transient, counted in ``shared_attach_retries``) from a
    genuinely missing segment, which still raises.
    """
    delay = ATTACH_BACKOFF_S
    for attempt in range(ATTACH_RETRIES + 1):
        try:
            return shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            if attempt == ATTACH_RETRIES:
                raise
            counter("shared_attach_retries").inc()
            time.sleep(delay)
            delay *= 2
    raise AssertionError("unreachable")  # pragma: no cover


class SharedArray:
    """A NumPy array backed by a named ``SharedMemory`` segment."""

    def __init__(
        self,
        name: str,
        shape: tuple[int, ...],
        dtype: str,
        *,
        _shm: shared_memory.SharedMemory | None = None,
        _owner: bool = False,
    ) -> None:
        if _shm is None:  # attach to an existing segment by name
            _shm = _attach(name)
            # The tracker would unlink the segment when *this* process
            # exits; only the owner should, and it has its own
            # registration.  (Python 3.13's ``track=False`` does the
            # same thing declaratively.)
            try:
                resource_tracker.unregister(_shm._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker impl detail
                pass
        self._shm: shared_memory.SharedMemory | None = _shm
        self._owner = _owner
        self.name = name
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        self._array: np.ndarray | None = None

    @classmethod
    def from_array(cls, array: np.ndarray, name: str | None = None) -> "SharedArray":
        """Copy ``array`` into a new shared segment (this process owns it)."""
        array = np.ascontiguousarray(array)
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, array.nbytes), name=name
        )
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[...] = array
        return cls(
            shm.name, array.shape, array.dtype.str, _shm=shm, _owner=True
        )

    @property
    def array(self) -> np.ndarray:
        """The shared block as an ndarray view (no copy)."""
        if self._shm is None:
            raise ValueError(f"SharedArray {self.name!r} is closed")
        if self._array is None:
            self._array = np.ndarray(
                self.shape, dtype=self.dtype, buffer=self._shm.buf
            )
        return self._array

    def __reduce__(self):
        # Workers re-attach by name; the segment itself never rides the
        # pickle stream.
        return (type(self), (self.name, self.shape, self.dtype.str))

    def close(self) -> None:
        """Drop this process's mapping (idempotent)."""
        if self._shm is None:
            return
        self._array = None  # views into shm.buf must die before close()
        try:
            self._shm.close()
        finally:
            self._shm = None

    def unlink(self) -> None:
        """Destroy the segment itself.  Owner's job, exactly once."""
        try:
            shared_memory.SharedMemory(name=self.name).unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc: object) -> None:
        owner = self._owner
        self.close()
        if owner:
            self.unlink()

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        state = "closed" if self._shm is None else "open"
        role = "owner" if self._owner else "attached"
        return (
            f"SharedArray({self.name!r}, shape={self.shape}, "
            f"dtype={self.dtype.str!r}, {role}, {state})"
        )


def share_arrays(arrays: dict[str, np.ndarray]) -> dict[str, SharedArray]:
    """Copy a column dict into shared segments (caller owns all of them)."""
    shared: dict[str, SharedArray] = {}
    try:
        for key, value in arrays.items():
            shared[key] = SharedArray.from_array(value)
    except Exception:
        release_arrays(shared)
        raise
    return shared


def release_arrays(shared: dict[str, SharedArray]) -> None:
    """Close and unlink every segment in a :func:`share_arrays` dict."""
    for sa in shared.values():
        owner = sa._owner
        sa.close()
        if owner:
            sa.unlink()
