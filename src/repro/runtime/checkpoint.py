"""Atomic per-experiment checkpoints: the recovery units of ``run_all``.

A run manifest proves *what* a finished experiment produced (its
``report_sha256``); a checkpoint additionally keeps the *bytes* -- the
rendered report section -- so an interrupted or sharded run can be
resumed/merged into a combined report byte-identical to an
uninterrupted one without re-running the finished work.

One checkpoint is one JSON file, written by the **parent** process the
moment an experiment's result lands (pool workers never write them, so
a SIGKILLed worker can at worst lose its own in-flight experiment).
Writes are atomic (temp file + ``os.replace``); loads verify the
recorded ``report_sha256`` against the stored report and the
``(name, scale, seed)`` coordinate against the requesting run, so a
torn, corrupt, or mismatched checkpoint degrades to "not checkpointed"
(counted in ``checkpoints_invalid``) instead of poisoning a resume.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any

from ..obs.logging import get_logger
from ..obs.metrics import counter

logger = get_logger("runtime.checkpoint")

#: Checkpoint document schema (bump on breaking layout changes).
CHECKPOINT_VERSION = 1


def run_key(scale: float, seed: int) -> str:
    """The directory key isolating one ``(scale, seed)`` run family."""
    return f"scale{float(scale):g}-seed{int(seed)}"


class CheckpointStore:
    """A directory of ``<experiment>.json`` checkpoint files."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path(self, name: str) -> Path:
        return self.root / f"{name}.json"

    def save(
        self,
        name: str,
        scale: float,
        seed: int,
        report: str,
        elapsed_seconds: float = 0.0,
    ) -> Path:
        """Atomically write (or overwrite) one experiment checkpoint."""
        document = {
            "version": CHECKPOINT_VERSION,
            "name": name,
            "scale": float(scale),
            "seed": int(seed),
            "report": report,
            "report_sha256": hashlib.sha256(report.encode()).hexdigest(),
            "elapsed_seconds": float(elapsed_seconds),
            "created_utc": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
        }
        self.root.mkdir(parents=True, exist_ok=True)
        fd, temp_name = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=".json"
        )
        path = self.path(name)
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(document, handle)
                handle.write("\n")
            os.replace(temp_name, path)
        except OSError:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        counter("checkpoints_written").inc()
        return path

    def load(
        self,
        name: str,
        scale: float | None = None,
        seed: int | None = None,
    ) -> dict[str, Any] | None:
        """The verified checkpoint for ``name``, or ``None``.

        Returns ``None`` (never raises) for a missing, torn, corrupt,
        hash-mismatched, or wrong-``(scale, seed)`` file -- a resume
        treats all of those identically: run the experiment again.
        """
        path = self.path(name)
        try:
            with open(path) as handle:
                document = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            counter("checkpoints_invalid").inc()
            logger.warning("checkpoint %s is unreadable; ignoring it", path)
            return None
        if not isinstance(document, dict):
            counter("checkpoints_invalid").inc()
            return None
        report = document.get("report")
        recorded = document.get("report_sha256")
        if (
            not isinstance(report, str)
            or hashlib.sha256(report.encode()).hexdigest() != recorded
        ):
            counter("checkpoints_invalid").inc()
            logger.warning(
                "checkpoint %s fails its own hash; ignoring it", path
            )
            return None
        if document.get("name") != name:
            counter("checkpoints_invalid").inc()
            return None
        if scale is not None and document.get("scale") != float(scale):
            counter("checkpoints_invalid").inc()
            return None
        if seed is not None and document.get("seed") != int(seed):
            counter("checkpoints_invalid").inc()
            return None
        return document

    def load_all(
        self, scale: float | None = None, seed: int | None = None
    ) -> dict[str, dict[str, Any]]:
        """Every verified checkpoint in the store, keyed by experiment."""
        if not self.root.is_dir():
            return {}
        records: dict[str, dict[str, Any]] = {}
        for path in sorted(self.root.glob("*.json")):
            record = self.load(path.stem, scale=scale, seed=seed)
            if record is not None:
                records[path.stem] = record
        return records

    def clear(self) -> int:
        """Delete every checkpoint; returns how many were removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in sorted(self.root.glob("*.json")):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
