"""On-disk memoization of featurized matrices.

Training-set assembly and candidate featurization dominate experiment
wall time after the suite itself is built, and the very same matrices
are recomputed by every table/figure that shares a (design, split layer,
feature set, neighborhood, alignment, seed) combination -- within one
``run_all`` invocation and across invocations.  :class:`FeatureCache`
stores them as ``.npz`` files keyed by a content hash of all of those
inputs *plus* a fingerprint of the featurization/sampling source code,
so a code change silently invalidates every stale entry.

Writes go through a temp file + ``os.replace`` so concurrent pool
workers (or concurrent CLI runs) can never observe a half-written
entry; two workers racing on the same key write identical bytes, so
last-write-wins is harmless.

The cache directory defaults to ``~/.cache/repro-splitmfg/features``
and is overridden by the ``REPRO_CACHE_DIR`` environment variable or
``--cache-dir`` on the CLIs.  Library calls never touch the disk unless
a cache is passed explicitly or installed with
:func:`set_default_cache` (the CLIs do the latter; ``--no-cache``
opts out).
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import tempfile
import zipfile
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from ..obs.logging import get_logger
from ..obs.metrics import counter, get_registry
from . import faults

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..splitmfg.split import SplitView

logger = get_logger("runtime.cache")

#: Environment variable overriding the default cache directory.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Sidecar file (inside the cache root) accumulating lifetime stats.
STATS_FILE = "stats.json"

#: Subdirectory corrupt entries are moved into (never globbed as entries).
QUARANTINE_DIR = "quarantine"

#: Counter names tracked per cache event; registry metrics are
#: ``cache_<name>`` and the sidecar/``stats()`` documents use the bare
#: names.
CACHE_COUNTERS = (
    "hits",
    "misses",
    "puts",
    "put_rejected",
    "evicted",
    "corrupt_entries",
    "hit_bytes",
    "put_bytes",
)

#: Entries whose arrays exceed this many bytes are not written (a single
#: full-scale all-pairs candidate matrix stays well under it; the cap
#: only guards pathological blowups).
MAX_ENTRY_BYTES = 256 * 1024 * 1024

#: Total byte budget of one chunk-addressed entry family (index entry
#: plus all of its chunk entries).  Chunked storage exists so a
#: paper-scale candidate matrix never has to materialize in one piece
#: -- on disk or in RAM -- but the disk footprint still needs a lid.
MAX_CHUNKED_BYTES = 8 * MAX_ENTRY_BYTES


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-splitmfg/features``."""
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-splitmfg" / "features"


_fingerprint: str | None = None


def code_fingerprint() -> str:
    """Digest of the sources that determine cached matrix contents.

    Covers pair featurization, sample generation, the tree-training
    engine, and the classifier-backend layer (cache hits skip straight
    to model fitting, so fit-path and backend edits must also
    invalidate); any edit to these modules changes every cache key,
    which is the invalidation story.
    """
    global _fingerprint
    if _fingerprint is None:
        from ..ml import backends, fit_engine, mlp, tree
        from ..splitmfg import featurize_engine, pair_features, sampling

        digest = hashlib.sha256()
        for module in (
            pair_features,
            featurize_engine,
            sampling,
            tree,
            fit_engine,
            backends,
            mlp,
        ):
            digest.update(inspect.getsource(module).encode())
        _fingerprint = digest.hexdigest()[:16]
    return _fingerprint


def _update_digest(digest: "hashlib._Hash", part: Any) -> None:
    """Feed one key part into the digest with an unambiguous encoding."""
    if part is None:
        digest.update(b"\x00N")
    elif isinstance(part, bool):
        digest.update(b"\x00B" + (b"1" if part else b"0"))
    elif isinstance(part, int):
        digest.update(b"\x00I" + str(part).encode())
    elif isinstance(part, float):
        digest.update(b"\x00F" + part.hex().encode())
    elif isinstance(part, str):
        digest.update(b"\x00S" + part.encode())
    elif isinstance(part, np.ndarray):
        digest.update(
            b"\x00A" + str(part.dtype).encode() + str(part.shape).encode()
        )
        digest.update(np.ascontiguousarray(part).tobytes())
    elif isinstance(part, (tuple, list)):
        digest.update(b"\x00L" + str(len(part)).encode())
        for item in part:
            _update_digest(digest, item)
    else:
        raise TypeError(f"unhashable cache key part: {type(part).__name__}")


def hash_key(*parts: Any) -> str:
    """Stable hex key from heterogeneous parts (ints, floats, arrays...)."""
    digest = hashlib.sha256()
    for part in parts:
        _update_digest(digest, part)
    return digest.hexdigest()


def view_content_hash(view: "SplitView") -> str:
    """Content hash of a split view (geometry, features, ground truth).

    Memoized on the view instance; ``SplitView.invalidate_cache`` drops
    it alongside the column arrays after in-place edits.
    """
    cached = getattr(view, "_content_hash", None)
    if cached is not None:
        return cached
    arr = view.arrays()
    pairs = view.match_pairs()
    pair_array = (
        np.array(pairs, dtype=np.int64)
        if pairs
        else np.zeros((0, 2), dtype=np.int64)
    )
    digest = hash_key(
        "split-view",
        view.design_name,
        int(view.split_layer),
        float(view.die_width),
        float(view.die_height),
        int(view.num_via_layers),
        view.top_metal_direction,
        sorted(arr),
        [arr[name] for name in sorted(arr)],
        pair_array,
    )
    try:
        view._content_hash = digest
    except AttributeError:  # exotic view stand-ins in tests
        pass
    return digest


class FeatureCache:
    """Directory of ``<key>.npz`` entries holding named float arrays.

    Every hit/miss/put/eviction increments both an instance attribute
    (``cache.hits`` etc.) and a process-wide ``cache_*`` counter in the
    :mod:`repro.obs.metrics` registry; pool workers' counts flow back
    to the parent through ``parallel_map``'s delta merging, and
    :func:`flush_cache_stats` folds the process totals into a sidecar
    file so ``repro cache stats`` sees the lifetime trajectory.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.put_rejected = 0
        self.evicted = 0
        self.corrupt_entries = 0
        self.hit_bytes = 0
        self.put_bytes = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.npz"

    def _count(self, name: str, amount: int = 1) -> None:
        setattr(self, name, getattr(self, name) + amount)
        counter(f"cache_{name}").inc(amount)

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt file out of the entry namespace (self-heal).

        A truncated or garbled entry (torn write, bad magic, disk
        corruption) is a *miss*, not an error: the caller recomputes and
        the fresh put replaces it.  The corrupt bytes are preserved
        under ``quarantine/`` for post-mortems rather than deleted --
        and crucially they stop matching the ``*.npz`` entry glob, so
        one bad file cannot fail every later lookup of its key.
        """
        quarantine = self.root / QUARANTINE_DIR
        try:
            quarantine.mkdir(parents=True, exist_ok=True)
            os.replace(path, quarantine / path.name)
        except OSError:
            try:
                path.unlink()
            except OSError:
                return  # racing worker already healed it
        self._count("corrupt_entries")
        logger.warning("quarantined corrupt cache entry %s", path.name)

    def get(self, key: str) -> dict[str, np.ndarray] | None:
        """The stored arrays for ``key``, or ``None`` on a miss.

        A corrupt entry is quarantined and treated as a miss (counted in
        ``cache_corrupt_entries``), so a torn write never raises into
        the experiment that merely tried to reuse it.
        """
        path = self._path(key)
        try:
            with np.load(path, allow_pickle=False) as data:
                arrays = {name: data[name] for name in data.files}
        except (OSError, ValueError, zipfile.BadZipFile, EOFError):
            if path.exists():
                self._quarantine(path)
            self._count("misses")
            return None
        self._count("hits")
        self._count(
            "hit_bytes", sum(array.nbytes for array in arrays.values())
        )
        return arrays

    def put(self, key: str, arrays: dict[str, np.ndarray]) -> bool:
        """Atomically store ``arrays``; returns whether it was written."""
        total = sum(np.asarray(a).nbytes for a in arrays.values())
        if total > MAX_ENTRY_BYTES:
            self._count("put_rejected")
            return False
        self.root.mkdir(parents=True, exist_ok=True)
        fd, temp_name = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=".npz"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, **arrays)
            # Chaos hook: a matching REPRO_FAULT_PLAN torn_write rule
            # truncates the bytes here, publishing exactly the torn
            # entry a crash mid-write would leave for get() to heal.
            faults.maybe_tear_write(temp_name, key=key)
            os.replace(temp_name, self._path(key))
        except OSError:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            self._count("put_rejected")
            return False
        self._count("puts")
        self._count("put_bytes", total)
        return True

    def chunk_key(self, key: str, index: int) -> str:
        """Entry key of chunk ``index`` of the chunk-addressed family ``key``.

        Chunk-addressed storage splits one logical entry (a paper-scale
        candidate matrix) into per-chunk ``.npz`` files plus a small
        index entry under the bare ``key`` naming how many chunks exist.
        Writers store every chunk first and the index last (a crashed
        or capped write leaves orphan chunks, never a dangling index);
        readers treat a missing chunk as a miss of the whole family.
        """
        return f"{key}-chunk{index:06d}"

    def put_chunk(
        self, key: str, index: int, arrays: dict[str, np.ndarray]
    ) -> bool:
        """Store one chunk of a chunk-addressed entry family."""
        return self.put(self.chunk_key(key, index), arrays)

    def get_chunk(self, key: str, index: int) -> dict[str, np.ndarray] | None:
        """Load one chunk of a chunk-addressed entry family."""
        return self.get(self.chunk_key(key, index))

    def entries(self) -> list[Path]:
        """All entry files currently in the cache directory."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.npz"))

    def __len__(self) -> int:
        return len(self.entries())

    def total_bytes(self) -> int:
        """Disk footprint of all entries."""
        return sum(path.stat().st_size for path in self.entries())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        if removed:
            self._count("evicted", removed)
        return removed

    def stats(self) -> dict[str, Any]:
        """Live statistics: directory footprint plus process counters.

        The counter values come from the process-wide registry (so they
        include merged pool-worker activity), which conflates multiple
        cache directories used in one process -- in practice the CLIs
        install exactly one.
        """
        snapshot = get_registry().snapshot()["counters"]
        document: dict[str, Any] = {
            "dir": str(self.root),
            "entries": len(self.entries()),
            "total_bytes": self.total_bytes(),
        }
        for name in CACHE_COUNTERS:
            document[name] = snapshot.get(f"cache_{name}", 0)
        return document

    def persisted_stats(self) -> dict[str, int]:
        """Lifetime counters accumulated in the sidecar file."""
        return _read_sidecar(self.root)


def _read_sidecar(root: Path) -> dict[str, int]:
    """The sidecar totals (zeros when absent or unreadable).

    A corrupt sidecar (torn write) self-heals the same way a corrupt
    entry does: it is quarantined, counted in ``cache_corrupt_entries``,
    and the totals restart from zero -- the sidecar is advisory
    bookkeeping, so losing it must never fail a run.
    """
    totals = {name: 0 for name in CACHE_COUNTERS}
    path = Path(root) / STATS_FILE
    try:
        with open(path) as handle:
            stored = json.load(handle)
        if not isinstance(stored, dict):
            raise ValueError("sidecar is not a JSON object")
    except OSError:
        return totals
    except ValueError:
        quarantine = Path(root) / QUARANTINE_DIR
        try:
            quarantine.mkdir(parents=True, exist_ok=True)
            os.replace(path, quarantine / path.name)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
        counter("cache_corrupt_entries").inc()
        logger.warning("quarantined corrupt cache sidecar %s", path)
        return totals
    for name in CACHE_COUNTERS:
        try:
            totals[name] = int(stored.get(name, 0))
        except (TypeError, ValueError):
            pass
    return totals


#: Registry counter values already flushed to a sidecar by this process.
_flush_baseline: dict[str, int] = {}


def flush_cache_stats(cache: FeatureCache) -> dict[str, int]:
    """Fold this process's un-flushed cache counters into the sidecar.

    Returns the updated lifetime totals.  Uses the registry counters
    (which include merged pool-worker deltas) against a module-level
    baseline, so calling it repeatedly never double-counts.  Concurrent
    CLI invocations race on read-modify-write and may lose each other's
    increment -- the sidecar is advisory bookkeeping, not a ledger.
    """
    snapshot = get_registry().snapshot()["counters"]
    current = {
        name: snapshot.get(f"cache_{name}", 0) for name in CACHE_COUNTERS
    }
    delta = {
        name: current[name] - _flush_baseline.get(name, 0)
        for name in CACHE_COUNTERS
    }
    _flush_baseline.update(current)
    totals = _read_sidecar(cache.root)
    for name in CACHE_COUNTERS:
        totals[name] += delta[name]
    if any(delta.values()) or not (cache.root / STATS_FILE).exists():
        try:
            cache.root.mkdir(parents=True, exist_ok=True)
            fd, temp_name = tempfile.mkstemp(
                dir=cache.root, prefix=".tmp-", suffix=".stats"
            )
            with os.fdopen(fd, "w") as handle:
                json.dump(totals, handle)
            os.replace(temp_name, cache.root / STATS_FILE)
        except OSError:
            pass
    return totals


_default_cache: FeatureCache | None = None


def set_default_cache(cache: FeatureCache | str | Path | None) -> None:
    """Install (or clear, with ``None``) the process-wide default cache."""
    global _default_cache
    if cache is not None and not isinstance(cache, FeatureCache):
        cache = FeatureCache(cache)
    _default_cache = cache


def get_default_cache() -> FeatureCache | None:
    """The process-wide default cache, if one was installed."""
    return _default_cache
