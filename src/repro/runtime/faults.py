"""Deterministic fault injection for chaos-testing the runtime.

A *fault plan* is a JSON document carried in the ``REPRO_FAULT_PLAN``
environment variable (the transport was chosen so pool workers inherit
it for free, whether the pool forks or spawns).  Each rule names an
operation and a *site* where it fires:

* ``kill`` -- the worker SIGKILLs itself mid-task, exactly what a
  segfault or the OOM killer does to a real run (site ``task``);
* ``raise`` -- the task raises :class:`InjectedFault` (site ``task``);
* ``stall`` -- the task sleeps ``seconds`` before doing any work, long
  enough to trip the pool's ``task_timeout_s`` watchdog (site ``task``);
* ``torn_write`` -- a cache entry is truncated mid-write, producing
  the torn ``.npz`` a crash between ``write`` and ``fsync`` would leave
  behind (site ``cache_write``).

Determinism is the whole point: a rule either pins an exact
``(task, attempt)`` coordinate, or carries a probability ``p`` that is
resolved by **hashing** ``(plan seed, op, site, task, attempt, key)``
-- never by consuming RNG state -- so the same plan injects the same
faults at the same places on every run, regardless of scheduling,
worker count, or how many unrelated random draws happened first.  That
is what lets CI assert byte-identical output *through* a chaos run.

Faults only fire where the runtime explicitly calls the injection
hooks (:func:`inject`, :func:`maybe_tear_write`): pool workers before
each task, and :class:`~repro.runtime.cache.FeatureCache` between
writing and publishing an entry.  The degraded-to-serial path in
:func:`~repro.runtime.pool.parallel_map` deliberately does *not*
inject, mirroring the real failure modes it exists to survive (a task
that crashes its worker does not crash the parent).
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
from dataclasses import dataclass, field

from ..obs.logging import get_logger
from ..obs.metrics import counter

logger = get_logger("runtime.faults")

#: Environment variable holding the JSON fault plan.
ENV_FAULT_PLAN = "REPRO_FAULT_PLAN"

#: Operations a rule may name, and the site each one fires at.
SITE_BY_OP = {
    "kill": "task",
    "raise": "task",
    "stall": "task",
    "torn_write": "cache_write",
}


class FaultPlanError(ValueError):
    """The ``REPRO_FAULT_PLAN`` document is malformed."""


class InjectedFault(RuntimeError):
    """The exception a ``raise`` rule throws inside a task."""


@dataclass
class FaultRule:
    """One injection rule of a fault plan."""

    op: str
    task: int | None = None  # None = any task index
    attempt: int | None = 0  # None = every attempt (default: first only)
    seconds: float = 30.0  # stall duration
    key_substring: str | None = None  # cache_write: match against the key
    p: float | None = None  # probabilistic gate (hash-resolved)
    times: int | None = None  # per-process firing cap
    fired: int = field(default=0, compare=False)  # per-process count

    @property
    def site(self) -> str:
        return SITE_BY_OP[self.op]

    def matches(
        self, site: str, index: int | None, attempt: int, key: str | None
    ) -> bool:
        """Structural match only; the probabilistic gate is separate."""
        if site != self.site:
            return False
        if self.times is not None and self.fired >= self.times:
            return False
        if self.task is not None and self.task != index:
            return False
        if self.attempt is not None and self.attempt != attempt:
            return False
        if self.key_substring is not None and self.key_substring not in (
            key or ""
        ):
            return False
        return True


@dataclass
class FaultPlan:
    """A parsed ``REPRO_FAULT_PLAN`` document."""

    seed: int = 0
    rules: list[FaultRule] = field(default_factory=list)

    def gate(
        self,
        rule: FaultRule,
        site: str,
        index: int | None,
        attempt: int,
        key: str | None,
    ) -> bool:
        """Resolve a rule's probabilistic gate deterministically.

        Hashes the full injection coordinate with the plan seed, so the
        decision for a given site never depends on execution order or
        on any other rule having fired.
        """
        if rule.p is None:
            return True
        coordinate = f"{self.seed}|{rule.op}|{site}|{index}|{attempt}|{key}"
        digest = hashlib.sha256(coordinate.encode()).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2**64
        return fraction < rule.p


def parse_plan(text: str) -> FaultPlan:
    """Parse a fault-plan JSON document; raises :class:`FaultPlanError`."""
    try:
        document = json.loads(text)
    except ValueError as error:
        raise FaultPlanError(f"fault plan is not valid JSON: {error}") from None
    if not isinstance(document, dict):
        raise FaultPlanError("fault plan must be a JSON object")
    rules = []
    for raw in document.get("faults", []):
        if not isinstance(raw, dict):
            raise FaultPlanError(f"fault rule must be an object, got {raw!r}")
        op = raw.get("op")
        if op not in SITE_BY_OP:
            raise FaultPlanError(
                f"unknown fault op {op!r}; choose from {sorted(SITE_BY_OP)}"
            )
        p = raw.get("p")
        if p is not None and not 0.0 <= float(p) <= 1.0:
            raise FaultPlanError(f"fault probability must be in [0, 1], got {p}")
        rules.append(
            FaultRule(
                op=op,
                task=raw.get("task"),
                attempt=raw["attempt"] if "attempt" in raw else 0,
                seconds=float(raw.get("seconds", 30.0)),
                key_substring=raw.get("key_substring"),
                p=None if p is None else float(p),
                times=raw.get("times"),
            )
        )
    return FaultPlan(seed=int(document.get("seed", 0)), rules=rules)


# Parsed-plan cache: keyed by (pid, env text) so forked workers re-parse
# (resetting the per-process ``fired`` counters) and env edits mid-process
# (tests) take effect.
_cached: tuple[int, str | None, FaultPlan | None] = (-1, None, None)


def active_plan() -> FaultPlan | None:
    """The plan from ``REPRO_FAULT_PLAN``, or ``None`` when unset."""
    global _cached
    text = os.environ.get(ENV_FAULT_PLAN) or None
    pid = os.getpid()
    if _cached[0] == pid and _cached[1] == text:
        return _cached[2]
    plan = parse_plan(text) if text else None
    _cached = (pid, text, plan)
    return plan


def inject(
    site: str,
    *,
    index: int | None = None,
    attempt: int = 0,
    key: str | None = None,
) -> None:
    """Fire any matching ``kill``/``raise``/``stall`` rule at ``site``."""
    plan = active_plan()
    if plan is None:
        return
    for rule in plan.rules:
        if rule.op == "torn_write":
            continue  # file-tearing goes through maybe_tear_write
        if not rule.matches(site, index, attempt, key):
            continue
        if not plan.gate(rule, site, index, attempt, key):
            continue
        rule.fired += 1
        counter("faults_injected", op=rule.op).inc()
        logger.warning(
            "injecting fault op=%s site=%s index=%s attempt=%s",
            rule.op, site, index, attempt,
        )
        if rule.op == "raise":
            raise InjectedFault(
                f"injected fault at {site} index={index} attempt={attempt}"
            )
        if rule.op == "stall":
            time.sleep(rule.seconds)
        elif rule.op == "kill":
            os.kill(os.getpid(), signal.SIGKILL)


def tear_file(path: str | os.PathLike) -> None:
    """Truncate a file to half its size (simulates a torn write)."""
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(size // 2)


def maybe_tear_write(path: str | os.PathLike, key: str | None = None) -> bool:
    """Tear the file at ``path`` if a ``torn_write`` rule matches ``key``."""
    plan = active_plan()
    if plan is None:
        return False
    for rule in plan.rules:
        if rule.op != "torn_write":
            continue
        if not rule.matches("cache_write", None, 0, key):
            continue
        if not plan.gate(rule, "cache_write", None, 0, key):
            continue
        rule.fired += 1
        counter("faults_injected", op=rule.op).inc()
        logger.warning("injecting torn write into %s (key=%s)", path, key)
        tear_file(path)
        return True
    return False
