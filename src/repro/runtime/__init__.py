"""Execution layer: process pools, deterministic seeding, feature cache.

``repro.runtime`` is the home of everything that decides *how* the
attack pipeline runs, as opposed to *what* it computes:

* :mod:`repro.runtime.pool` -- :func:`parallel_map` fans work out over a
  ``ProcessPoolExecutor`` (``--jobs N`` on the CLIs) while preserving
  input order, so parallel output is indistinguishable from serial;
* :mod:`repro.runtime.seeding` -- :func:`spawn_seeds` derives per-fold
  RNG seeds with ``np.random.SeedSequence.spawn``; derivation depends
  only on ``(root seed, fold index)``, never on execution order, which
  is what makes ``--jobs N`` bit-identical to ``--jobs 1``;
* :mod:`repro.runtime.cache` -- :class:`FeatureCache` memoizes
  featurized training/candidate matrices on disk, keyed by a content
  hash of (design, split layer, feature set, neighborhood, alignment,
  seed) plus a fingerprint of the featurization code, so stale entries
  self-invalidate when the feature definitions change.
"""

from .cache import (
    MAX_CHUNKED_BYTES,
    FeatureCache,
    code_fingerprint,
    default_cache_dir,
    flush_cache_stats,
    get_default_cache,
    hash_key,
    set_default_cache,
    view_content_hash,
)
from .checkpoint import CheckpointStore, run_key
from .faults import FaultPlan, FaultPlanError, InjectedFault
from .pool import (
    DEFAULT_RETRY_POLICY,
    RetryPolicy,
    parallel_map,
    resolve_jobs,
)
from .seeding import spawn_seeds, spawn_seedsequences
from .shared import SharedArray, release_arrays, share_arrays

__all__ = [
    "CheckpointStore",
    "DEFAULT_RETRY_POLICY",
    "FaultPlan",
    "FaultPlanError",
    "FeatureCache",
    "InjectedFault",
    "MAX_CHUNKED_BYTES",
    "RetryPolicy",
    "SharedArray",
    "code_fingerprint",
    "default_cache_dir",
    "flush_cache_stats",
    "get_default_cache",
    "hash_key",
    "parallel_map",
    "release_arrays",
    "resolve_jobs",
    "run_key",
    "set_default_cache",
    "share_arrays",
    "spawn_seeds",
    "spawn_seedsequences",
    "view_content_hash",
]
