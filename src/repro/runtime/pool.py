"""Order-preserving process-pool map for experiment fan-out.

The one rule of this module: ``parallel_map(fn, items, jobs=N)`` returns
exactly what ``[fn(x) for x in items]`` returns, in the same order, for
every ``N``.  Determinism is the caller's job (see
:mod:`repro.runtime.seeding`); order preservation and the serial
fast path are this module's.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None`` -> 1, ``<= 0`` -> all cores."""
    if jobs is None:
        return 1
    try:
        jobs = int(jobs)
    except (TypeError, ValueError):
        raise ValueError(f"jobs must be an integer, got {jobs!r}") from None
    if jobs <= 0:
        return max(os.cpu_count() or 1, 1)
    return jobs


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (workers inherit warmed suite/view caches)."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = 1,
) -> list[R]:
    """Map ``fn`` over ``items``, optionally on a process pool.

    ``jobs <= 1`` (or a single item) runs serially in-process with no
    executor overhead.  ``fn`` and every item must be picklable when
    ``jobs > 1``; results come back in input order.
    """
    work: Sequence[T] = list(items)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    workers = min(jobs, len(work))
    with ProcessPoolExecutor(max_workers=workers, mp_context=_pool_context()) as pool:
        return list(pool.map(fn, work))
