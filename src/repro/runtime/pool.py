"""Order-preserving, fault-tolerant process-pool map for experiment fan-out.

The one rule of this module: ``parallel_map(fn, items, jobs=N)`` returns
exactly what ``[fn(x) for x in items]`` returns, in the same order, for
every ``N``.  Determinism is the caller's job (see
:mod:`repro.runtime.seeding`); order preservation, the serial fast
path, and -- since the fault-tolerance rework -- *surviving worker
death* are this module's.

Failure handling (:class:`RetryPolicy`): a task whose worker dies
(``BrokenProcessPool``) or that raises is resubmitted to a rebuilt pool
with bounded exponential backoff; a task that keeps failing degrades to
in-process serial execution, so one poisonous item can never sink the
other N-1 results.  A ``task_timeout_s`` watchdog SIGKILLs the pool
when a running task stalls past its deadline, which turns a hang into
the (retryable) worker-death path.  Retried results are still returned
in input order, and each retry re-runs ``fn`` from scratch with the
same item -- the dead attempt's partial metrics never ship -- so output
is byte-identical to a clean run.  ``pool_worker_deaths``,
``task_retries``, and ``tasks_degraded_serial`` count the recoveries.

Observability rides along invisibly: when work goes to the pool, each
task is wrapped so the worker (1) re-applies the parent's logging and
resource-sampling configuration, (2) resets tracing (``fork`` leaks
the parent's open span stack), and (3) ships its finished spans and
its metrics *delta* back beside the result.  The parent re-attaches
the spans under its open span and merges the metric deltas -- in input
order, so traces and counts are the same whether the task ran serially
or on a worker.  Worker-recorded root spans are stamped with a
``worker_pid`` attribute (the Chrome-trace exporter lays each worker
out on its own lane), and worker resource gauges -- peak RSS above
all -- merge into the parent by element-wise max, so ``--jobs N``
resource accounting matches what serial attribution would report.

Large read-only NumPy inputs should ride in a :class:`~repro.runtime
.shared.SharedArray` (re-exported here): it pickles as a segment *name*,
so each worker attaches to the one shared block instead of receiving a
private copy, and on the serial fast path the callee gets the original
object untouched.

Chaos testing: workers call :func:`repro.runtime.faults.inject` before
each task, so a seeded ``REPRO_FAULT_PLAN`` can kill/stall/fail chosen
``(task, attempt)`` coordinates reproducibly (the recovery machinery
above is what the injected faults exercise).
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence, TypeVar

from ..obs.logging import apply_log_config, get_logger, log_config
from ..obs.metrics import counter, get_registry, snapshot_delta
from ..obs.resources import (
    apply_resource_config,
    resource_config,
    update_resource_gauges,
)
from ..obs.trace import adopt_spans, drain_spans, reset_tracing
from . import faults
from .shared import SharedArray, release_arrays, share_arrays  # noqa: F401

T = TypeVar("T")
R = TypeVar("R")

logger = get_logger("runtime.pool")

#: Completion-loop poll interval: bounds watchdog/backoff resolution.
POLL_INTERVAL_S = 0.05


@dataclass(frozen=True)
class RetryPolicy:
    """How :func:`parallel_map` responds to task and worker failure.

    A task is tried at most ``1 + max_retries`` times on the pool (with
    ``backoff_s * backoff_factor**k`` sleeps between attempts, capped at
    ``max_backoff_s``) before degrading to in-process serial execution
    -- where a still-failing task finally raises, preserving the
    propagate-the-error contract for deterministic bugs.
    ``task_timeout_s`` arms a watchdog that SIGKILLs the pool's workers
    when a *running* task exceeds the deadline (the only way to reclaim
    a stalled ``ProcessPoolExecutor`` worker); the breakage is then
    handled like any other worker death.  ``max_pool_rebuilds`` caps
    pool reconstructions per ``parallel_map`` call -- beyond it, every
    remaining task degrades to serial rather than thrashing.
    """

    max_retries: int = 2
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 2.0
    task_timeout_s: float | None = None
    max_pool_rebuilds: int = 8

    def backoff(self, attempt: int) -> float:
        """Sleep before resubmitting a task that failed ``attempt`` times."""
        exponent = max(attempt - 1, 0)
        return min(
            self.backoff_s * self.backoff_factor**exponent, self.max_backoff_s
        )


DEFAULT_RETRY_POLICY = RetryPolicy()


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None`` -> 1, ``<= 0`` -> all cores."""
    if jobs is None:
        return 1
    try:
        jobs = int(jobs)
    except (TypeError, ValueError):
        raise ValueError(f"jobs must be an integer, got {jobs!r}") from None
    if jobs <= 0:
        return max(os.cpu_count() or 1, 1)
    return jobs


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (workers inherit warmed suite/view caches)."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _observed_call(
    payload: tuple[
        Callable[[T], R],
        T,
        int,
        int,
        dict[str, Any] | None,
        dict[str, Any] | None,
    ],
) -> tuple[R, list[dict[str, Any]], dict[str, Any]]:
    """Run one task in a worker, capturing its spans and metric delta."""
    fn, item, index, attempt, logging_config, sampling_config = payload
    apply_log_config(logging_config)
    apply_resource_config(sampling_config)
    reset_tracing()
    before = get_registry().snapshot()
    faults.inject("task", index=index, attempt=attempt)
    result = fn(item)
    if sampling_config:
        # Final reading so the shipped gauge delta carries this task's
        # peak even when the sampler thread did not tick at the end.
        update_resource_gauges()
    spans = drain_spans()
    for document in spans:
        document.setdefault("attrs", {})["worker_pid"] = os.getpid()
    delta = snapshot_delta(before, get_registry().snapshot())
    return result, spans, delta


def _kill_pool_workers(pool: ProcessPoolExecutor) -> None:
    """SIGKILL every live worker (watchdog / interrupt teardown)."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.kill()
        except Exception:  # pragma: no cover - already-dead worker
            pass


def _run_pooled(
    fn: Callable[[T], R],
    work: Sequence[T],
    workers: int,
    policy: RetryPolicy,
    on_result: Callable[[int, R], None] | None,
) -> list[R]:
    """The fault-tolerant pool path of :func:`parallel_map`."""
    logging_config = log_config()
    sampling_config = resource_config()
    n = len(work)
    collected: dict[int, tuple[R, list[dict[str, Any]], dict[str, Any] | None]]
    collected = {}
    attempts = [0] * n  # failed pool attempts per task
    to_submit: list[int] = list(range(n))
    retry_heap: list[tuple[float, int]] = []  # (ready time, index)
    degraded: set[int] = set()
    pending: dict[Any, int] = {}  # future -> index
    running_since: dict[int, float] = {}
    free_passes: set[tuple[int, int]] = set()  # (index, attempt) resubmits
    rebuilds = 0
    pool: ProcessPoolExecutor | None = None

    def charge_failure(index: int) -> None:
        """One failed pool attempt: schedule a retry or degrade."""
        attempts[index] += 1
        if attempts[index] > policy.max_retries:
            counter("tasks_degraded_serial").inc()
            logger.warning(
                "task %d failed %d time(s) on the pool; degrading to "
                "in-process execution", index, attempts[index],
            )
            degraded.add(index)
        else:
            counter("task_retries").inc()
            ready = time.monotonic() + policy.backoff(attempts[index])
            heapq.heappush(retry_heap, (ready, index))

    def charge_or_resubmit(index: int, observed_running: bool) -> None:
        """A task's future resolved broken: charge it or resubmit free.

        Queued-but-unstarted tasks are innocent bystanders of someone
        else's death, so they resubmit without burning retry budget --
        but the running-state poll can miss a task whose worker dies
        faster than one poll interval, and an uncharged instant-killer
        would loop the rebuild budget away.  One free pass per
        ``(index, attempt)``: the second broken resolution at the same
        attempt is charged even if the task was never seen running.
        """
        if observed_running or (index, attempts[index]) in free_passes:
            charge_failure(index)
        else:
            free_passes.add((index, attempts[index]))
            to_submit.append(index)

    def handle_pool_broken() -> None:
        """A worker died: rebuild state, charge the tasks that were running."""
        nonlocal rebuilds, pool
        rebuilds += 1
        counter("pool_worker_deaths").inc()
        lost = sorted(pending.values())
        was_running = set(running_since)
        pending.clear()
        running_since.clear()
        if pool is not None:
            _kill_pool_workers(pool)
            pool.shutdown(wait=False, cancel_futures=True)
            pool = None
        logger.warning(
            "process pool broken (rebuild %d/%d); %d task(s) in flight",
            rebuilds, policy.max_pool_rebuilds, len(lost),
        )
        for index in lost:
            charge_or_resubmit(index, index in was_running)
        if rebuilds > policy.max_pool_rebuilds:
            # The pool keeps dying without converging: stop trusting it.
            survivors = sorted(
                set(to_submit) | {index for _, index in retry_heap}
            )
            if survivors:
                counter("tasks_degraded_serial").inc(len(survivors))
                logger.warning(
                    "pool rebuild budget exhausted; running %d remaining "
                    "task(s) in-process", len(survivors),
                )
            to_submit.clear()
            retry_heap.clear()
            degraded.update(survivors)

    try:
        while len(collected) < n:
            # Degraded tasks run inline, in index order, with no fault
            # injection -- this is the recovery of last resort, and it
            # must behave exactly like a ``jobs=1`` run of the item.
            while degraded:
                index = min(degraded)
                degraded.discard(index)
                value = fn(work[index])
                collected[index] = (value, [], None)
                if on_result is not None:
                    on_result(index, value)
            if len(collected) >= n:
                break
            now = time.monotonic()
            while retry_heap and retry_heap[0][0] <= now:
                _, index = heapq.heappop(retry_heap)
                to_submit.append(index)
            if to_submit:
                if pool is None and rebuilds <= policy.max_pool_rebuilds:
                    pool = ProcessPoolExecutor(
                        max_workers=workers, mp_context=_pool_context()
                    )
                while to_submit:
                    index = to_submit.pop(0)
                    try:
                        future = pool.submit(
                            _observed_call,
                            (
                                fn,
                                work[index],
                                index,
                                attempts[index],
                                logging_config,
                                sampling_config,
                            ),
                        )
                    except (BrokenProcessPool, RuntimeError):
                        to_submit.append(index)
                        handle_pool_broken()
                        break
                    pending[future] = index
            if not pending:
                if retry_heap:
                    time.sleep(
                        min(
                            max(retry_heap[0][0] - time.monotonic(), 0.0),
                            POLL_INTERVAL_S,
                        )
                    )
                continue
            done, _ = wait(
                set(pending), timeout=POLL_INTERVAL_S,
                return_when=FIRST_COMPLETED,
            )
            now = time.monotonic()
            for future, index in pending.items():
                if future.running() and index not in running_since:
                    running_since[index] = now
            broken = False
            for future in done:
                index = pending.pop(future)
                was_running = index in running_since
                running_since.pop(index, None)
                try:
                    value, spans, delta = future.result()
                except BrokenProcessPool:
                    broken = True
                    charge_or_resubmit(index, was_running)
                except Exception:
                    # The task itself raised (a bug or an injected
                    # fault): retry, then degrade -- the degraded
                    # in-process run re-raises deterministic errors.
                    charge_failure(index)
                else:
                    collected[index] = (value, spans, delta)
                    if on_result is not None:
                        on_result(index, value)
            if broken:
                handle_pool_broken()
                continue
            if policy.task_timeout_s is not None and pool is not None:
                overdue = [
                    index
                    for index, started in running_since.items()
                    if now - started > policy.task_timeout_s
                ]
                if overdue:
                    logger.warning(
                        "task(s) %s exceeded task_timeout_s=%.3g; killing "
                        "pool workers", overdue, policy.task_timeout_s,
                    )
                    # The only way to reclaim a stalled worker: kill the
                    # pool and let the breakage path retry its tasks.
                    _kill_pool_workers(pool)
    except BaseException:
        if pool is not None:
            _kill_pool_workers(pool)
            pool.shutdown(wait=False, cancel_futures=True)
        raise
    else:
        if pool is not None:
            pool.shutdown(wait=True)

    registry = get_registry()
    results: list[R] = []
    for index in range(n):
        value, spans, delta = collected[index]
        adopt_spans(spans)
        registry.merge(delta)
        results.append(value)
    return results


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = 1,
    retry: RetryPolicy | None = None,
    on_result: Callable[[int, R], None] | None = None,
) -> list[R]:
    """Map ``fn`` over ``items``, optionally on a fault-tolerant pool.

    ``jobs <= 1`` (or a single item) runs serially in-process with no
    executor overhead.  ``fn`` and every item must be picklable when
    ``jobs > 1``; results come back in input order.  Spans and metrics
    recorded by ``fn`` inside workers are merged back into this
    process's tracer and registry, in input order.

    ``retry`` (default :data:`DEFAULT_RETRY_POLICY`) governs recovery
    from worker death, task exceptions, and -- when ``task_timeout_s``
    is set -- stalls; see :class:`RetryPolicy`.  ``on_result`` is
    invoked in the parent as ``on_result(index, result)`` the moment
    each task's result lands (completion order, not input order):
    callers use it to checkpoint incrementally so an interrupted run
    keeps everything already finished.
    """
    work: Sequence[T] = list(items)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(work) <= 1:
        results = []
        for index, item in enumerate(work):
            value = fn(item)
            if on_result is not None:
                on_result(index, value)
            results.append(value)
        return results
    return _run_pooled(
        fn,
        work,
        min(jobs, len(work)),
        retry or DEFAULT_RETRY_POLICY,
        on_result,
    )
