"""Order-preserving process-pool map for experiment fan-out.

The one rule of this module: ``parallel_map(fn, items, jobs=N)`` returns
exactly what ``[fn(x) for x in items]`` returns, in the same order, for
every ``N``.  Determinism is the caller's job (see
:mod:`repro.runtime.seeding`); order preservation and the serial
fast path are this module's.

Observability rides along invisibly: when work goes to the pool, each
task is wrapped so the worker (1) re-applies the parent's logging and
resource-sampling configuration, (2) resets tracing (``fork`` leaks
the parent's open span stack), and (3) ships its finished spans and
its metrics *delta* back beside the result.  The parent re-attaches
the spans under its open span and merges the metric deltas -- in input
order, so traces and counts are the same whether the task ran serially
or on a worker.  Worker-recorded root spans are stamped with a
``worker_pid`` attribute (the Chrome-trace exporter lays each worker
out on its own lane), and worker resource gauges -- peak RSS above
all -- merge into the parent by element-wise max, so ``--jobs N``
resource accounting matches what serial attribution would report.

Large read-only NumPy inputs should ride in a :class:`~repro.runtime
.shared.SharedArray` (re-exported here): it pickles as a segment *name*,
so each worker attaches to the one shared block instead of receiving a
private copy, and on the serial fast path the callee gets the original
object untouched.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Sequence, TypeVar

from ..obs.logging import apply_log_config, log_config
from ..obs.metrics import get_registry, snapshot_delta
from ..obs.resources import (
    apply_resource_config,
    resource_config,
    update_resource_gauges,
)
from ..obs.trace import adopt_spans, drain_spans, reset_tracing
from .shared import SharedArray, release_arrays, share_arrays  # noqa: F401

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None`` -> 1, ``<= 0`` -> all cores."""
    if jobs is None:
        return 1
    try:
        jobs = int(jobs)
    except (TypeError, ValueError):
        raise ValueError(f"jobs must be an integer, got {jobs!r}") from None
    if jobs <= 0:
        return max(os.cpu_count() or 1, 1)
    return jobs


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (workers inherit warmed suite/view caches)."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _observed_call(
    payload: tuple[
        Callable[[T], R], T, dict[str, Any] | None, dict[str, Any] | None
    ],
) -> tuple[R, list[dict[str, Any]], dict[str, Any]]:
    """Run one task in a worker, capturing its spans and metric delta."""
    fn, item, logging_config, sampling_config = payload
    apply_log_config(logging_config)
    apply_resource_config(sampling_config)
    reset_tracing()
    before = get_registry().snapshot()
    result = fn(item)
    if sampling_config:
        # Final reading so the shipped gauge delta carries this task's
        # peak even when the sampler thread did not tick at the end.
        update_resource_gauges()
    spans = drain_spans()
    for document in spans:
        document.setdefault("attrs", {})["worker_pid"] = os.getpid()
    delta = snapshot_delta(before, get_registry().snapshot())
    return result, spans, delta


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = 1,
) -> list[R]:
    """Map ``fn`` over ``items``, optionally on a process pool.

    ``jobs <= 1`` (or a single item) runs serially in-process with no
    executor overhead.  ``fn`` and every item must be picklable when
    ``jobs > 1``; results come back in input order.  Spans and metrics
    recorded by ``fn`` inside workers are merged back into this
    process's tracer and registry, in input order.
    """
    work: Sequence[T] = list(items)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    workers = min(jobs, len(work))
    logging_config = log_config()
    sampling_config = resource_config()
    payloads = [
        (fn, item, logging_config, sampling_config) for item in work
    ]
    with ProcessPoolExecutor(max_workers=workers, mp_context=_pool_context()) as pool:
        observed = list(pool.map(_observed_call, payloads))
    registry = get_registry()
    results: list[R] = []
    for result, spans, delta in observed:
        adopt_spans(spans)
        registry.merge(delta)
        results.append(result)
    return results
