"""Deterministic per-task seed derivation.

Experiment folds must draw *independent* random streams that do not
depend on which process (or in which order) they run.  ``seed + fold``
arithmetic is order-independent but produces overlapping generator
streams for nearby seeds; ``np.random.SeedSequence.spawn`` gives
cryptographically-mixed child entropy from a single root, so fold ``k``
of root seed ``s`` always sees the same stream whether it runs first,
last, serially, or on a pool worker.
"""

from __future__ import annotations

import numpy as np


def spawn_seedsequences(seed: int, n: int) -> list[np.random.SeedSequence]:
    """``n`` child ``SeedSequence``s of the root ``seed`` (order-stable)."""
    if n < 0:
        raise ValueError(f"cannot spawn {n} seed sequences")
    return list(np.random.SeedSequence(seed).spawn(n))


def seed_of(sequence: np.random.SeedSequence) -> int:
    """A 128-bit integer seed drawn from ``sequence`` (picklable)."""
    state = sequence.generate_state(4, np.uint32)
    return int.from_bytes(state.tobytes(), "little")


def spawn_seeds(seed: int, n: int) -> list[int]:
    """``n`` independent integer seeds derived from the root ``seed``.

    The result depends only on ``(seed, n, index)``; it is how every
    LOOCV fold gets its RNG so that parallel execution is bit-identical
    to serial execution.
    """
    return [seed_of(sequence) for sequence in spawn_seedsequences(seed, n)]
