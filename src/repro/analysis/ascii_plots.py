"""Terminal plotting: sparklines and small line charts for reports.

The figure experiments print numeric series; these helpers add a visual
layer that survives plain-text pipelines (EXPERIMENTS.md, CI logs) --
the closest a matplotlib-free repository gets to the paper's figures.
"""

from __future__ import annotations

from typing import Sequence

_SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values: Sequence[float], lo: float | None = None, hi: float | None = None) -> str:
    """One-line character plot of a numeric series."""
    data = [float(v) for v in values]
    if not data:
        return ""
    lo = min(data) if lo is None else lo
    hi = max(data) if hi is None else hi
    span = hi - lo
    if span <= 0:
        return _SPARK_LEVELS[-1] * len(data)
    out = []
    for v in data:
        t = (v - lo) / span
        out.append(_SPARK_LEVELS[min(int(t * (len(_SPARK_LEVELS) - 1) + 0.5), len(_SPARK_LEVELS) - 1)])
    return "".join(out)


def line_chart(
    series: dict[str, Sequence[float]],
    x_labels: Sequence[str],
    height: int = 12,
    y_format: str = "{:.2f}",
) -> str:
    """A multi-series ASCII line chart.

    Each series is drawn with its own marker; the y-axis spans the pooled
    range.  Intended for a handful of short series (the trade-off curves
    of Figs. 9/10), not general plotting.
    """
    if not series:
        return ""
    markers = "ox+*#@%&"
    pooled = [v for vs in series.values() for v in vs]
    lo, hi = min(pooled), max(pooled)
    if hi <= lo:
        hi = lo + 1.0
    width = len(x_labels)
    grid = [[" "] * width for _ in range(height)]
    for (name, values), marker in zip(series.items(), markers):
        for x, v in enumerate(values[:width]):
            t = (float(v) - lo) / (hi - lo)
            y = height - 1 - min(int(t * (height - 1) + 0.5), height - 1)
            grid[y][x] = marker
    lines = []
    for row_index, row in enumerate(grid):
        y_value = hi - (hi - lo) * row_index / (height - 1)
        label = y_format.format(y_value).rjust(8)
        lines.append(f"{label} |" + "  ".join(row))
    lines.append(" " * 8 + "+" + "-" * (3 * width - 2))
    lines.append(
        " " * 9 + "  ".join(str(lab)[:1].ljust(1) for lab in x_labels)
    )
    legend = "   ".join(
        f"{marker}={name}" for (name, _), marker in zip(series.items(), markers)
    )
    lines.append(f"{'':8} {legend}")
    return "\n".join(lines)


def curve_block(
    title: str,
    fractions: Sequence[float],
    series: dict[str, Sequence[float]],
) -> str:
    """A titled chart of accuracy-vs-fraction curves with sparklines."""
    labels = [f"{f:g}" for f in fractions]
    chart = line_chart(series, labels, y_format="{:.0%}")
    sparks = "\n".join(
        f"  {name:12s} {sparkline(values, 0.0, 1.0)}"
        for name, values in series.items()
    )
    return f"{title}\n{chart}\n\nsparklines (0..100%):\n{sparks}"
