"""Information-theoretic security metrics for split views and attacks.

The paper's discussion (and reference [11]) frames split-manufacturing
security as the attacker's residual uncertainty.  This module quantifies
it:

* :func:`baseline_entropy_bits` -- bits needed to identify each v-pin's
  match with no attack at all (log2 of the legal candidate count);
* :func:`residual_entropy_bits` -- bits remaining once the attacker
  holds the classifier's LoCs at a threshold (log2 |LoC| for covered
  v-pins, full baseline for missed ones);
* :func:`security_bits` -- the designer-facing summary: mean residual
  bits per v-pin, i.e. how much guessing the BEOL still costs after the
  strongest ML attack in this repository.
"""

from __future__ import annotations

import numpy as np

from ..attack.result import AttackResult
from ..splitmfg.split import SplitView


def baseline_entropy_bits(view: SplitView) -> float:
    """Mean log2(#legal candidates) per matched v-pin, attack-free."""
    n = len(view)
    if n < 2:
        return 0.0
    out = view.arrays()["out_area"] > 0
    n_drivers = int(out.sum())
    bits = []
    for vpin in view.vpins:
        if not vpin.matches:
            continue
        # Legal candidates: everyone except self and, for drivers, the
        # other drivers (the paper's legality rule).
        candidates = n - 1 - (n_drivers - 1 if out[vpin.id] else 0)
        bits.append(np.log2(max(candidates, 1)))
    return float(np.mean(bits)) if bits else 0.0


def residual_entropy_bits(result: AttackResult, threshold: float = 0.5) -> float:
    """Mean bits of uncertainty left after applying the LoCs.

    Per matched v-pin: log2 |LoC| if the match is inside the LoC (the
    attacker must still pick among |LoC| candidates), else the baseline
    bits (the LoC misled them; they are back to guessing).
    """
    view = result.view
    n = len(view)
    if n < 2:
        return 0.0
    out = view.arrays()["out_area"] > 0
    n_drivers = int(out.sum())
    keep = result.prob >= threshold
    loc_sizes = np.zeros(n)
    np.add.at(loc_sizes, result.pair_i[keep], 1)
    np.add.at(loc_sizes, result.pair_j[keep], 1)
    cover = result.cover_probability()
    bits = []
    for vpin in view.vpins:
        if not vpin.matches:
            continue
        covered = np.isfinite(cover[vpin.id]) and cover[vpin.id] >= threshold
        if covered and loc_sizes[vpin.id] >= 1:
            bits.append(np.log2(loc_sizes[vpin.id]))
        else:
            candidates = n - 1 - (n_drivers - 1 if out[vpin.id] else 0)
            bits.append(np.log2(max(candidates, 1)))
    return float(np.mean(bits)) if bits else 0.0


def security_bits(
    result: AttackResult, threshold: float = 0.5
) -> dict[str, float]:
    """Designer-facing summary of one attack result.

    Returns baseline bits, residual bits, and the reduction the attack
    achieved (``gain``); a secure split keeps the gain small.
    """
    baseline = baseline_entropy_bits(result.view)
    residual = residual_entropy_bits(result, threshold)
    return {
        "baseline_bits": baseline,
        "residual_bits": residual,
        "gain_bits": baseline - residual,
    }
