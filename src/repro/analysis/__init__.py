"""Analyses over attack results and split views (the paper's Section IV)."""

from .ascii_plots import curve_block, line_chart, sparkline
from .curves import (
    DEFAULT_FRACTIONS,
    accuracy_at_fraction,
    fraction_for_mean_accuracy,
    mean_accuracy_at_fractions,
    mean_curve,
)
from .distributions import (
    FeatureDistribution,
    feature_distributions,
    loo_cdf_per_design,
    match_distance_cdf,
)
from .security import (
    baseline_entropy_bits,
    residual_entropy_bits,
    security_bits,
)
from .ranking import (
    design_feature_ranking,
    rank_order,
    suite_feature_ranking,
    top_features,
)

__all__ = [
    "DEFAULT_FRACTIONS",
    "FeatureDistribution",
    "accuracy_at_fraction",
    "baseline_entropy_bits",
    "curve_block",
    "design_feature_ranking",
    "feature_distributions",
    "fraction_for_mean_accuracy",
    "line_chart",
    "loo_cdf_per_design",
    "match_distance_cdf",
    "mean_accuracy_at_fractions",
    "mean_curve",
    "rank_order",
    "residual_entropy_bits",
    "security_bits",
    "sparkline",
    "suite_feature_ranking",
    "top_features",
]
