"""Data-distribution analyses: Fig. 4 (match-distance CDFs) and Fig. 8
(per-class feature distributions).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..splitmfg.pair_features import FEATURES_11
from ..splitmfg.sampling import build_training_set
from ..splitmfg.split import SplitView


def match_distance_cdf(
    views: list[SplitView],
    grid: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """CDF of the normalized true-match ManhattanVpin, pooled over views.

    Returns ``(grid, cdf)`` with distances normalized by each design's
    half-perimeter (paper Fig. 4 plots exactly this, aggregated over the
    N-1 training designs of each fold).
    """
    pooled = []
    for view in views:
        distances = view.match_distances()
        if len(distances):
            pooled.append(distances / view.half_perimeter)
    if not pooled:
        raise ValueError("no matching pairs in any view")
    data = np.sort(np.concatenate(pooled))
    if grid is None:
        grid = np.linspace(0.0, float(data.max()), 200)
    cdf = np.searchsorted(data, grid, side="right") / len(data)
    return grid, cdf


def loo_cdf_per_design(
    views: list[SplitView],
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Fig. 4: for each design, the CDF over the *other* N-1 designs."""
    out = {}
    for k, view in enumerate(views):
        rest = views[:k] + views[k + 1 :]
        out[view.design_name] = match_distance_cdf(rest)
    return out


@dataclass(frozen=True)
class FeatureDistribution:
    """Summary of one feature's per-class distribution (Fig. 8)."""

    feature: str
    positive_quantiles: tuple[float, ...]
    negative_quantiles: tuple[float, ...]
    positive_mean: float
    negative_mean: float
    positive_outlier_rate: float
    negative_outlier_rate: float

    @property
    def separation(self) -> float:
        """Gap between class medians, normalized by the pooled IQR."""
        pos_med = self.positive_quantiles[2]
        neg_med = self.negative_quantiles[2]
        iqr = (
            (self.positive_quantiles[3] - self.positive_quantiles[1])
            + (self.negative_quantiles[3] - self.negative_quantiles[1])
        ) / 2.0
        if iqr <= 0:
            return 0.0
        return abs(pos_med - neg_med) / iqr


_QUANTILES = (0.01, 0.25, 0.50, 0.75, 0.99)


def _summary(x: np.ndarray) -> tuple[tuple[float, ...], float, float]:
    quantiles = tuple(float(q) for q in np.quantile(x, _QUANTILES))
    q1, q3 = quantiles[1], quantiles[3]
    iqr = q3 - q1
    if iqr > 0:
        outliers = float(((x < q1 - 3 * iqr) | (x > q3 + 3 * iqr)).mean())
    else:
        outliers = 0.0
    return quantiles, float(x.mean()), outliers


def feature_distributions(
    views: list[SplitView],
    features: tuple[str, ...] = FEATURES_11,
    seed: int = 0,
) -> dict[str, FeatureDistribution]:
    """Fig. 8 data: per-class distribution summaries, all views mixed."""
    rng = np.random.default_rng(seed)
    training_set = build_training_set(views, features, rng)
    X, y = training_set.X, training_set.y
    out: dict[str, FeatureDistribution] = {}
    for k, feature in enumerate(features):
        pos = X[y == 1, k]
        neg = X[y == 0, k]
        pos_q, pos_mean, pos_out = _summary(pos)
        neg_q, neg_mean, neg_out = _summary(neg)
        out[feature] = FeatureDistribution(
            feature=feature,
            positive_quantiles=pos_q,
            negative_quantiles=neg_q,
            positive_mean=pos_mean,
            negative_mean=neg_mean,
            positive_outlier_rate=pos_out,
            negative_outlier_rate=neg_out,
        )
    return out
