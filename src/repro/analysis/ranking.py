"""Feature-ranking analysis (paper Section IV-A, Fig. 7).

Computes information gain, |correlation|, and Fisher's discriminant ratio
of every pair feature, per design and split layer, over the samples an
``Imp`` model would train on for that design.
"""

from __future__ import annotations

import numpy as np

from ..ml.feature_metrics import rank_features
from ..splitmfg.pair_features import FEATURES_11
from ..splitmfg.sampling import (
    DEFAULT_NEIGHBORHOOD_PERCENTILE,
    build_training_set,
    neighborhood_fraction,
)
from ..splitmfg.split import SplitView

Metrics = dict[str, dict[str, float]]


def design_feature_ranking(
    view: SplitView,
    seed: int = 0,
    features: tuple[str, ...] = FEATURES_11,
    percentile: float = DEFAULT_NEIGHBORHOOD_PERCENTILE,
) -> Metrics:
    """All three ranking metrics on one design's Imp training samples."""
    rng = np.random.default_rng(seed)
    fraction = neighborhood_fraction([view], percentile)
    training_set = build_training_set(
        [view], features, rng, neighborhood=fraction
    )
    return rank_features(training_set.X, training_set.y, features)


def suite_feature_ranking(
    views: list[SplitView],
    seed: int = 0,
    features: tuple[str, ...] = FEATURES_11,
) -> dict[str, Metrics]:
    """Fig. 7 data: ``{design_name: {feature: {metric: value}}}``."""
    return {
        view.design_name: design_feature_ranking(view, seed=seed, features=features)
        for view in views
    }


def rank_order(metrics: Metrics, key: str = "info_gain") -> list[str]:
    """Feature names sorted by one metric, most important first."""
    return sorted(metrics, key=lambda name: metrics[name][key], reverse=True)


def top_features(
    by_design: dict[str, Metrics], key: str = "info_gain", k: int = 3
) -> dict[str, list[str]]:
    """Top-``k`` features per design for one metric."""
    return {
        design: rank_order(metrics, key)[:k] for design, metrics in by_design.items()
    }
