"""LoC-fraction vs accuracy curve aggregation (paper Figs. 9/10, Table IV).

Table IV's row values are read off the *average* curve over the five
benchmarks: the "LoC fraction with an average accuracy of X%" is the
smallest fraction where the mean curve reaches X, and vice versa.
"""

from __future__ import annotations

import numpy as np

from ..attack.result import AttackResult

#: Dense fraction grid used for averaged curves.
DEFAULT_FRACTIONS = np.logspace(-5, np.log10(0.5), 60)


def mean_curve(
    results: list[AttackResult],
    fractions: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Average accuracy over results at shared LoC fractions."""
    if not results:
        raise ValueError("need at least one result")
    fractions = DEFAULT_FRACTIONS if fractions is None else np.asarray(fractions)
    accuracy = np.zeros(len(fractions))
    for result in results:
        accuracy += np.array(
            [result.accuracy_at_loc_fraction(f) for f in fractions]
        )
    return fractions, accuracy / len(results)


def fraction_for_mean_accuracy(
    fractions: np.ndarray,
    accuracies: np.ndarray,
    target: float,
) -> float | None:
    """Smallest fraction whose mean accuracy reaches ``target`` (or None)."""
    reached = np.nonzero(accuracies >= target)[0]
    if len(reached) == 0:
        return None
    first = reached[0]
    if first == 0:
        return float(fractions[0])
    # Log-linear interpolation between the bracketing grid points.
    x0, x1 = np.log10(fractions[first - 1]), np.log10(fractions[first])
    y0, y1 = accuracies[first - 1], accuracies[first]
    if y1 == y0:
        return float(fractions[first])
    t = (target - y0) / (y1 - y0)
    return float(10 ** (x0 + t * (x1 - x0)))


def accuracy_at_fraction(
    fractions: np.ndarray,
    accuracies: np.ndarray,
    target: float,
) -> float:
    """Mean accuracy at a LoC fraction (log-linear interpolation)."""
    if target <= fractions[0]:
        return float(accuracies[0])
    if target >= fractions[-1]:
        return float(accuracies[-1])
    return float(
        np.interp(np.log10(target), np.log10(fractions), accuracies)
    )


def mean_accuracy_at_fractions(
    results: list[AttackResult],
    targets: tuple[float, ...],
) -> dict[float, float]:
    """Average (over results) accuracy at each exact LoC fraction."""
    return {
        target: float(
            np.mean([r.accuracy_at_loc_fraction(target) for r in results])
        )
        for target in targets
    }
